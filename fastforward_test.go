package delta

import (
	"context"
	"testing"
)

// TestFastForwardEquivalence bounds the divergence between analytical
// fast-forward and simulated warmup. The analytical models are approximations
// (coupon-collector footprints, exclusive-window L2 filtering, mixture
// interleaving composition), so results are close but not identical; the
// documented bound (DESIGN.md §10) is 6% on geomean IPC and 25% on any single
// core. Measured divergence on the w1/w4/w8 mixes is within 3.6% geomean and
// 17% worst-core across all four policies; the margin absorbs seed and mix
// drift without letting a broken seeding path slip through (a zeroed UMON or
// cold caches shift geomean IPC well over 10%).
func TestFastForwardEquivalence(t *testing.T) {
	for _, pol := range []PolicyKind{PolicySnuca, PolicyPrivate, PolicyDelta, PolicyIdeal} {
		t.Run(string(pol), func(t *testing.T) {
			run := func(ff bool) Result {
				s, err := New(
					WithPolicy(pol), WithCores(16),
					WithWarmup(60_000), WithBudget(60_000),
					WithFastForward(ff),
				)
				if err != nil {
					t.Fatal(err)
				}
				s.LoadMix("w1")
				return s.Run()
			}
			base := run(false)
			fast := run(true)
			bg, fg := base.GeoMeanIPC(), fast.GeoMeanIPC()
			if bg <= 0 || fg <= 0 {
				t.Fatalf("degenerate IPC: base %v ff %v", bg, fg)
			}
			if rel := abs(fg-bg) / bg; rel > 0.06 {
				t.Errorf("geomean IPC diverged %.1f%%: base %.4f ff %.4f", rel*100, bg, fg)
			}
			for i := range base.Cores {
				b, f := base.Cores[i].IPC, fast.Cores[i].IPC
				if b <= 0 {
					continue
				}
				if rel := abs(f-b) / b; rel > 0.25 {
					t.Errorf("core %d IPC diverged %.1f%%: base %.4f ff %.4f", i, rel*100, b, f)
				}
			}
		})
	}
}

// TestFastForwardNewPolicies is the fast-forward safety smoke for the policy
// zoo: a prefilled chip must run to completion under each new policy with the
// invariant harness on. The tight divergence bounds above stay scoped to the
// four paper schemes whose analytical models they were calibrated against.
func TestFastForwardNewPolicies(t *testing.T) {
	for _, pol := range []PolicyKind{PolicyLFOC, PolicyCARMA, PolicyBankBW} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			t.Parallel()
			s, err := New(
				WithPolicy(pol), WithCores(16),
				WithWarmup(40_000), WithBudget(40_000),
				WithFastForward(true), WithCheck(true),
			)
			if err != nil {
				t.Fatal(err)
			}
			s.LoadMix("w1")
			res := s.Run()
			if g := res.GeoMeanIPC(); g <= 0 {
				t.Fatalf("degenerate geomean IPC %v", g)
			}
		})
	}
}

// TestFastForwardChecked runs a fast-forwarded simulation under the invariant
// harness: the prefilled caches and directory bits must satisfy the same
// inclusion/occupancy/monotonicity sweeps as simulated state (the harness
// panics on the first violation).
func TestFastForwardChecked(t *testing.T) {
	s, err := New(
		WithPolicy(PolicyDelta), WithCores(16),
		WithWarmup(30_000), WithBudget(10_000),
		WithFastForward(true), WithCheck(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadMix("w1")
	if res := s.Run(); res.GeoMeanIPC() <= 0 {
		t.Fatal("checked fast-forward run measured nothing")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestFastForwardSnapshotRestore: a fast-forwarded run interrupted at a
// quantum boundary and restored must produce the bit-identical future of the
// uninterrupted fast-forwarded run — and, critically, the restore path must
// NOT re-seed (chip.FastForward panics on a chip that has advanced, so a
// regression here fails loudly).
func TestFastForwardSnapshotRestore(t *testing.T) {
	ref := newTestSim(t, PolicyDelta, WithFastForward(true))
	ref.LoadMix("w1")
	if _, err := ref.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	sim := newTestSim(t, PolicyDelta, WithFastForward(true))
	sim.LoadMix("w1")
	runToBoundary(t, sim, 3)
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.cfg.FastForward {
		t.Fatal("FastForward flag lost across encode/decode")
	}
	if _, err := resumed.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Fingerprint(); got != want {
		t.Fatalf("restored fast-forwarded run fingerprint %s, want %s", got, want)
	}
}
