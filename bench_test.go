package delta

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §5). Each benchmark regenerates the
// experiment at a reduced scale per iteration, so `go test -bench=. -benchmem`
// exercises every reproduction path; `cmd/delta-bench` runs the full-scale
// versions that EXPERIMENTS.md records.

import (
	"fmt"
	"path/filepath"
	"strconv"
	"testing"

	"delta/internal/central"
	"delta/internal/chip"
	"delta/internal/experiments"
	"delta/internal/telemetry"
	"delta/internal/telemetry/columnar"
	"delta/internal/workloads"
)

// benchScale trims windows so a single benchmark iteration stays in the
// seconds range.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Warmup = 60_000
	sc.Budget = 40_000
	return sc
}

// benchMixes is the subset swept by the per-figure benchmarks (the full 15
// mixes are the domain of cmd/delta-bench).
var benchMixes = []string{"w2", "w6", "w13"}

func runPolicyBench(b *testing.B, policy string, cores int) {
	sc := benchScale()
	if cores > 16 {
		sc = sc.For64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range benchMixes {
			sc.RunMix(policy, workloads.MixByName(m), cores)
		}
	}
}

// BenchmarkFig5Snuca16 measures the S-NUCA baseline runs behind Fig. 5.
func BenchmarkFig5Snuca16(b *testing.B) { runPolicyBench(b, "snuca", 16) }

// BenchmarkFig5Private16 measures the private baseline runs behind Fig. 5.
func BenchmarkFig5Private16(b *testing.B) { runPolicyBench(b, "private", 16) }

// BenchmarkFig5Delta16 measures the DELTA runs behind Fig. 5.
func BenchmarkFig5Delta16(b *testing.B) { runPolicyBench(b, "delta", 16) }

// BenchmarkFig5Ideal16 measures the ideal-centralized runs behind Fig. 5.
func BenchmarkFig5Ideal16(b *testing.B) { runPolicyBench(b, "ideal", 16) }

// BenchmarkFig6Fairness computes the ANTT/STP comparison of Fig. 6 on one
// mix (delta + ideal + private runs plus metric computation).
func BenchmarkFig6Fairness(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := experiments.NewSuite(sc, 16)
		st.Run("private", "w2")
		st.Run("delta", "w2")
		st.Run("ideal", "w2")
	}
}

// BenchmarkFig7PerApp regenerates the per-application normalization of
// Fig. 7 (w2 on 16 cores).
func BenchmarkFig7PerApp(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := experiments.NewSuite(sc, 16)
		experiments.PerApp(st, "w2")
	}
}

// BenchmarkFig8PerApp regenerates Fig. 8 (w3 on 16 cores).
func BenchmarkFig8PerApp(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := experiments.NewSuite(sc, 16)
		experiments.PerApp(st, "w3")
	}
}

// BenchmarkFig9Delta64 measures the 64-core DELTA runs behind Fig. 9.
func BenchmarkFig9Delta64(b *testing.B) { runPolicyBench(b, "delta", 64) }

// BenchmarkFig10PerApp64 regenerates Fig. 10 (w2 on 64 cores).
func BenchmarkFig10PerApp64(b *testing.B) {
	sc := benchScale().For64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := experiments.NewSuite(sc, 64)
		experiments.PerApp(st, "w2")
	}
}

// BenchmarkFig11PerApp64 regenerates Fig. 11 (w13 on 64 cores), the
// farsighted-over-allocation study.
func BenchmarkFig11PerApp64(b *testing.B) {
	sc := benchScale().For64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := experiments.NewSuite(sc, 64)
		experiments.PerApp(st, "w13")
	}
}

// BenchmarkFig12Multithreaded runs one SPLASH2 profile through the
// multithreaded three-policy comparison of Fig. 12.
func BenchmarkFig12Multithreaded(b *testing.B) {
	sc := benchScale()
	app := workloads.Splash2ByName("fft")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = app.SharedApp(16, sc.Seed).PrivateRatios(5000)
		cfg := sc.ChipConfig(16)
		cfg.Multithreaded = true
		// One policy run (S-NUCA) exercises the multithreaded path.
		c := chip.New(cfg, sc.NewPolicy("snuca"))
		gens := app.ThreadGenerators(16, sc.Seed)
		for t, g := range gens {
			c.SetWorkload(t, g, false)
		}
		c.Run(sc.Warmup, sc.Budget)
	}
}

// BenchmarkFig13Frequency runs the fast-vs-slow reallocation comparison of
// Fig. 13 on one mix.
func BenchmarkFig13Frequency(b *testing.B) {
	sc := benchScale()
	m := workloads.MixByName("w5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.RunMix("ideal", m, 16)
		sc.RunMix("ideal-slow", m, 16)
	}
}

// BenchmarkTableVILookahead times the Lookahead allocator at 16 cores — the
// paper's Table VI datum (5.32 ms in their setup).
func BenchmarkTableVILookahead(b *testing.B) {
	curves := central.SyntheticCurves(16, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		central.Lookahead(curves, 256, 1, 256)
	}
}

// BenchmarkTableVIPeekahead times the Peekahead allocator at 16 cores.
func BenchmarkTableVIPeekahead(b *testing.B) {
	curves := central.SyntheticCurves(16, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		central.Peekahead(curves, 256, 1, 256)
	}
}

// BenchmarkTableVILookahead64 shows the growth to 64 cores (1230 ms in the
// paper's setup, three orders slower than DELTA's distributed computation).
func BenchmarkTableVILookahead64(b *testing.B) {
	curves := central.SyntheticCurves(64, 1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		central.Lookahead(curves, 1024, 1, 1024)
	}
}

// BenchmarkTelemetryOverhead compares a Fig. 5-style DELTA run with telemetry
// fully disabled (Recorder nil: the sampler never runs) against the same run
// through the no-op recorder (the full sampling/event path executes and
// discards). The ISSUE acceptance bound is <2% delta between the two;
// bench_results.txt records the measurements.
func BenchmarkTelemetryOverhead(b *testing.B) {
	mix := workloads.MixByName("w2")
	run := func(b *testing.B, rec telemetry.Recorder) {
		sc := benchScale()
		sc.Recorder = rec
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.RunMix("delta", mix, 16)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, telemetry.Nop{}) })
}

// BenchmarkColumnarSinkOverhead compares the same Fig. 5-style DELTA run
// through the no-op recorder against the columnar segment sink: the full
// sampling path executes in both, but the columnar case also delta-encodes,
// downsamples, checksums and writes every point. The ISSUE acceptance bound
// is <3% over nop; bench_results.txt records the measurements.
func BenchmarkColumnarSinkOverhead(b *testing.B) {
	mix := workloads.MixByName("w2")
	run := func(b *testing.B, mk func(i int) (telemetry.Recorder, func() error)) {
		sc := benchScale()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec, done := mk(i)
			sc.Recorder = rec
			sc.RunMix("delta", mix, 16)
			if err := done(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nop", func(b *testing.B) {
		run(b, func(int) (telemetry.Recorder, func() error) {
			return telemetry.Nop{}, func() error { return nil }
		})
	})
	b.Run("columnar", func(b *testing.B) {
		dir := b.TempDir()
		run(b, func(i int) (telemetry.Recorder, func() error) {
			w, err := columnar.NewWriter(columnar.Config{
				Dir: filepath.Join(dir, strconv.Itoa(i)), Job: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			return w, w.Close
		})
	})
}

// BenchmarkCampaign measures the parallel campaign engine: one fixed 8-job
// campaign (snuca + delta over four mixes, the independent unit the figure
// drivers fan out) at 1, 4 and 8 workers. The wall-clock ratio between the
// workers=1 and workers=4 sub-benchmarks is the speedup bench_results.txt
// records; results are bit-identical at every worker count.
func BenchmarkCampaign(b *testing.B) {
	jobs := experiments.CrossJobs(
		[]string{"snuca", "delta"}, []string{"w2", "w5", "w6", "w13"}, 16)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sc := benchScale()
			sc.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				experiments.Runner{Workers: workers}.Run(sc, jobs)
			}
		})
	}
	// The same sweep with analytical fast-forward replacing the simulated
	// warmup — the campaign configuration delta-bench exposes via
	// -fastforward. The gap against workers=N above is the warmup share of
	// campaign wall-clock.
	for _, workers := range []int{4} {
		b.Run(fmt.Sprintf("fastforward/workers=%d", workers), func(b *testing.B) {
			sc := benchScale()
			sc.Workers = workers
			sc.FastForward = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				experiments.Runner{Workers: workers}.Run(sc, jobs)
			}
		})
	}
}

// BenchmarkOverheadsControlTraffic measures the run behind the Section
// IV-E2 message-overhead analysis.
func BenchmarkOverheadsControlTraffic(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Overheads(sc, "w6")
	}
}
