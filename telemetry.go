package delta

import (
	"io"

	"delta/internal/telemetry"
	"delta/internal/telemetry/columnar"
)

// Recorder is the telemetry sink threaded through the simulator: structured
// reconfiguration events, per-quantum time-series samples, counters and
// gauges. Attach one via Config.Recorder. See the internal/telemetry package
// documentation for the event schema.
type Recorder = telemetry.Recorder

// TelemetryEvent is one structured reconfiguration event.
type TelemetryEvent = telemetry.Event

// TelemetrySample is one per-quantum time-series point.
type TelemetrySample = telemetry.Sample

// EventKind labels a TelemetryEvent.
type EventKind = telemetry.EventKind

// Event kinds, re-exported for payload inspection.
const (
	KindChallenge       = telemetry.KindChallenge
	KindChallengeResult = telemetry.KindChallengeResult
	KindCede            = telemetry.KindCede
	KindIdleGrant       = telemetry.KindIdleGrant
	KindIntraShift      = telemetry.KindIntraShift
	KindRetreat         = telemetry.KindRetreat
	KindRemap           = telemetry.KindRemap
	KindAlloc           = telemetry.KindAlloc
	KindQuantumSample   = telemetry.KindQuantumSample
)

// ChipWideSample is the TelemetrySample.Tile value of chip-wide samples.
const ChipWideSample = telemetry.ChipWide

// MemoryRecorder retains telemetry in process: events in a bounded ring,
// samples in order, counters/gauges in maps with sorted accessors.
type MemoryRecorder = telemetry.Memory

// StreamRecorder writes telemetry to an io.Writer as JSONL or CSV.
type StreamRecorder = telemetry.Stream

// NopRecorder discards everything at (benchmarked) negligible cost.
type NopRecorder = telemetry.Nop

// NewMemoryRecorder builds an in-memory recorder retaining up to eventCap
// events (<= 0 uses the default capacity).
func NewMemoryRecorder(eventCap int) *MemoryRecorder {
	return telemetry.NewMemory(eventCap)
}

// NewJSONLRecorder builds a streaming recorder emitting one JSON object per
// line; call Flush when the run completes.
func NewJSONLRecorder(w io.Writer) *StreamRecorder { return telemetry.NewJSONL(w) }

// NewCSVRecorder builds a streaming recorder emitting fixed-column CSV.
func NewCSVRecorder(w io.Writer) *StreamRecorder { return telemetry.NewCSV(w) }

// NewMultiRecorder fans telemetry out to several recorders.
func NewMultiRecorder(recs ...Recorder) Recorder { return telemetry.NewMulti(recs...) }

// ColumnarConfig tunes a columnar segment-sink recorder; only Dir is
// required. See internal/telemetry/columnar for the segment format.
type ColumnarConfig = columnar.Config

// ColumnarRecorder streams per-quantum samples into rotating, CRC-framed,
// schema-versioned columnar segment files with deterministic downsampling
// tiers (raw, 1/10, 1/100) and per-job retention caps — the telemetry sink
// that scales to long campaigns where an in-memory sample slice cannot. Close
// it when the run completes. Query segment directories with
// columnar.OpenDir/Range (or delta-served's /telemetry endpoint) and merge
// multi-node directories with `delta-trace merge`.
type ColumnarRecorder = columnar.Writer

// NewColumnarRecorder opens (creating if needed) cfg.Dir and appends a fresh
// segment after any already present.
func NewColumnarRecorder(cfg ColumnarConfig) (*ColumnarRecorder, error) {
	return columnar.NewWriter(cfg)
}

// ColumnarDir reads one job's columnar segment directory.
type ColumnarDir = columnar.Dir

// ColumnarQuery selects rows from a segment directory: a cycle range, a
// resolution factor (1, 10 or 100, with fallback to finer tiers), and an
// optional tag filter.
type ColumnarQuery = columnar.Query

// ColumnarRow is one decoded time-series point with its provenance.
type ColumnarRow = columnar.Row

// OpenColumnarDir indexes a segment directory for range queries, validating
// every segment's header and checksums.
func OpenColumnarDir(dir string) (*ColumnarDir, error) { return columnar.OpenDir(dir) }
