package delta

import (
	"io"

	"delta/internal/telemetry"
)

// Recorder is the telemetry sink threaded through the simulator: structured
// reconfiguration events, per-quantum time-series samples, counters and
// gauges. Attach one via Config.Recorder. See the internal/telemetry package
// documentation for the event schema.
type Recorder = telemetry.Recorder

// TelemetryEvent is one structured reconfiguration event.
type TelemetryEvent = telemetry.Event

// TelemetrySample is one per-quantum time-series point.
type TelemetrySample = telemetry.Sample

// EventKind labels a TelemetryEvent.
type EventKind = telemetry.EventKind

// Event kinds, re-exported for payload inspection.
const (
	KindChallenge       = telemetry.KindChallenge
	KindChallengeResult = telemetry.KindChallengeResult
	KindCede            = telemetry.KindCede
	KindIdleGrant       = telemetry.KindIdleGrant
	KindIntraShift      = telemetry.KindIntraShift
	KindRetreat         = telemetry.KindRetreat
	KindRemap           = telemetry.KindRemap
	KindAlloc           = telemetry.KindAlloc
	KindQuantumSample   = telemetry.KindQuantumSample
)

// ChipWideSample is the TelemetrySample.Tile value of chip-wide samples.
const ChipWideSample = telemetry.ChipWide

// MemoryRecorder retains telemetry in process: events in a bounded ring,
// samples in order, counters/gauges in maps with sorted accessors.
type MemoryRecorder = telemetry.Memory

// StreamRecorder writes telemetry to an io.Writer as JSONL or CSV.
type StreamRecorder = telemetry.Stream

// NopRecorder discards everything at (benchmarked) negligible cost.
type NopRecorder = telemetry.Nop

// NewMemoryRecorder builds an in-memory recorder retaining up to eventCap
// events (<= 0 uses the default capacity).
func NewMemoryRecorder(eventCap int) *MemoryRecorder {
	return telemetry.NewMemory(eventCap)
}

// NewJSONLRecorder builds a streaming recorder emitting one JSON object per
// line; call Flush when the run completes.
func NewJSONLRecorder(w io.Writer) *StreamRecorder { return telemetry.NewJSONL(w) }

// NewCSVRecorder builds a streaming recorder emitting fixed-column CSV.
func NewCSVRecorder(w io.Writer) *StreamRecorder { return telemetry.NewCSV(w) }

// NewMultiRecorder fans telemetry out to several recorders.
func NewMultiRecorder(recs ...Recorder) Recorder { return telemetry.NewMulti(recs...) }
