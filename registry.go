package delta

import (
	"delta/internal/chip"
	"delta/internal/policies"
)

// This file is the facade over the policy registry: every layer that needs
// "which policies exist?" (CLIs' -policy all, delta-served's validation, the
// experiments campaigns) asks here instead of keeping a hard-coded list, and
// external packages can plug new chip policies into the same machinery the
// seven built-ins use.

// Policy is the chip-level policy contract a registered builder must
// produce. See internal/chip.Policy; optional capabilities (membership
// handling, snapshotting, self-checks) follow the same interfaces the
// built-in policies implement.
type Policy = chip.Policy

// PolicyBuildContext carries what a policy builder sees: the configuration's
// TimeCompression as IntervalScale, and the WithPolicyParams JSON blob (nil
// when none was set) to unmarshal onto scale-resolved defaults.
type PolicyBuildContext = policies.BuildContext

// PolicyBuilder constructs a policy instance for one simulator. Builders
// must return a fresh instance per call: simulators run concurrently and a
// policy attaches to exactly one chip.
type PolicyBuilder = policies.Builder

// RegisterPolicy adds a named policy to the registry, making it resolvable
// through Config.Policy everywhere built-ins are: the facade, delta-sim and
// delta-bench's -policy flags, delta-served's validation, and the
// experiments campaigns. It panics on an empty or duplicate name — call it
// from an init function.
//
// Registered policies build and run, but Snapshot support for third-party
// policies additionally requires implementing chip.PolicySnapshotter, and
// their state must fit the snapshot schema's policy envelope.
func RegisterPolicy(name string, builder PolicyBuilder) {
	policies.Register(name, builder)
}

// Policies lists every registered policy name: the seven built-ins in
// registration order (snuca, private, delta, ideal, lfoc, carma, bankbw),
// then external registrations sorted by name.
func Policies() []string { return policies.Names() }
