package delta

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"delta/internal/central"
	"delta/internal/core"
	"delta/internal/snapshot"
	"delta/internal/workloads"
)

// SnapshotSchemaVersion is the snapshot wire-format version this build reads
// and writes. Decoding any other version fails with ErrSnapshotVersion.
const SnapshotSchemaVersion = snapshot.Version

// ErrSnapshotVersion is returned (wrapped) by DecodeSnapshot when the data
// was written under a different schema version.
var ErrSnapshotVersion = snapshot.ErrSnapshotVersion

// ErrNotSnapshotable is returned (wrapped) by Simulator.Snapshot when the
// simulator state cannot be captured: a custom Generator workload, or a
// generator type without cursor serialization (trace.StackDistGen).
var ErrNotSnapshotable = snapshot.ErrNotSnapshotable

// Snapshot is a deterministic, versioned capture of a Simulator at a quantum
// boundary. Restore rebuilds a simulator that continues bit-identically:
// run-to-completion equals run→Snapshot→Restore→run.
type Snapshot struct {
	env *snapshot.Envelope
}

// Encode serializes the snapshot. Encoding is deterministic: the same state
// always yields the same bytes.
func (sn *Snapshot) Encode() ([]byte, error) {
	return snapshot.Encode(sn.env)
}

// DecodeSnapshot parses bytes produced by Encode, rejecting other schema
// versions with an error wrapping ErrSnapshotVersion.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	env, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	if env.Kind != snapshotKind {
		return nil, fmt.Errorf("delta: snapshot kind %q, want %q", env.Kind, snapshotKind)
	}
	if len(env.Config) == 0 {
		return nil, errors.New("delta: snapshot has no configuration")
	}
	return &Snapshot{env: env}, nil
}

const snapshotKind = "delta.simulator"

// Snapshot captures the simulator's complete state. It is valid before the
// run, after Run/RunCtx returns (including cancellation, which stops at a
// quantum boundary), and from a checkpoint hook; it must not race a
// concurrently executing RunCtx. It fails, wrapping ErrNotSnapshotable, when
// a workload was loaded from a custom Generator — restore needs named specs
// to rebuild the generator tree.
func (s *Simulator) Snapshot() (*Snapshot, error) {
	if s.hasCustom {
		return nil, fmt.Errorf("delta: custom Generator workloads: %w", ErrNotSnapshotable)
	}
	if s.loaded == 0 {
		return nil, errors.New("delta: no workloads assigned")
	}
	cfgJSON, err := s.cfg.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	chipSnap, err := s.chip.Snapshot()
	if err != nil {
		return nil, err
	}
	w := &snapshot.Workloads{Mix: s.mixName}
	for _, a := range s.appByCore {
		w.Apps = append(w.Apps, a)
	}
	sort.Slice(w.Apps, func(i, j int) bool { return w.Apps[i].Core < w.Apps[j].Core })
	return &Snapshot{env: &snapshot.Envelope{
		Kind:      snapshotKind,
		Config:    cfgJSON,
		Workloads: w,
		Chip:      chipSnap,
	}}, nil
}

// LastSnapshot returns the most recent auto-checkpoint (SnapshotEvery > 0,
// or the stop-point checkpoint of a canceled run), or nil if none was taken.
// Safe to call from other goroutines.
func (s *Simulator) LastSnapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSnap
}

// storeCheckpoint captures the current state into lastSnap; failures
// (e.g. custom generators) leave the previous checkpoint in place.
func (s *Simulator) storeCheckpoint() {
	snap, err := s.Snapshot()
	if err != nil {
		return
	}
	s.mu.Lock()
	s.lastSnap = snap
	s.mu.Unlock()
}

// Fingerprint returns a deterministic digest string of the full simulator
// state (per-core results, per-bank reports, chip/NoC/memory counters) used
// by the equivalence tests and the checkpoint smoke lane.
func (s *Simulator) Fingerprint() string { return s.chip.Fingerprint() }

// Restore rebuilds a simulator from a snapshot: the recorded configuration
// and workload specs reconstruct the chip, then every cursor, counter, cache
// line and in-flight control message is overwritten from the captured state.
// The restored simulator continues bit-identically to the original.
//
// opts apply on top of the recorded configuration and are meant for the
// observability knobs (WithRecorder, WithCheck, WithSnapshotEvery, ...);
// overriding result-affecting fields breaks the equivalence guarantee and
// usually fails geometry validation.
func Restore(sn *Snapshot, opts ...Option) (*Simulator, error) {
	if sn == nil || sn.env == nil || sn.env.Chip == nil {
		return nil, errors.New("delta: nil snapshot")
	}
	cfg, err := configFromCanonicalJSON(sn.env.Config)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := newSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if sn.env.Workloads != nil {
		if sn.env.Workloads.Mix != "" {
			if err := s.LoadMixE(sn.env.Workloads.Mix); err != nil {
				return nil, err
			}
		}
		for _, a := range sn.env.Workloads.Apps {
			if err := s.SetWorkloadE(a.Core, Workload{App: a.App, SharedAddressSpace: a.Shared}); err != nil {
				return nil, err
			}
		}
	}
	if s.loaded == 0 {
		return nil, errors.New("delta: snapshot records no workloads")
	}
	// A mid-scenario snapshot was taken after membership events moved
	// workloads around, but the envelope records the t=0 assignment (so a
	// restored simulator's own snapshots stay replayable). Re-derive the
	// occupancy at the snapshot's clock and reshape the generator tree to
	// match before the chip restore overwrites every cursor: RestoreGen
	// needs each tile's generator to have the right structure, nothing more.
	if cfg.Scenario != nil && sn.env.Chip.Now > 0 {
		initial := make([]string, cfg.Cores)
		if s.mixName != "" {
			for i, a := range workloads.MixByName(s.mixName).Slots(cfg.Cores) {
				initial[i] = a.Name
			}
		}
		for c, a := range s.appByCore {
			initial[c] = a.App
		}
		occ, seedCore := cfg.Scenario.ProvenanceAt(initial, s.chip.Cfg.Quantum, sn.env.Chip.Now)
		for i, app := range occ {
			if app == initial[i] && seedCore[i] == i {
				continue
			}
			if app == "" {
				s.chip.SetWorkload(i, nil, true)
				continue
			}
			// A migrated workload keeps the generator its source core built:
			// seed-derived structure (region bases, stream layout) is not
			// cursor state, so rebuilding with the destination's seed would
			// diverge. seedCore names the core whose seed to use.
			gen, err := s.buildApp(seedCore[i], app)
			if err != nil {
				return nil, err
			}
			s.chip.SetWorkload(i, gen, true)
		}
	}
	if err := s.chip.Restore(sn.env.Chip); err != nil {
		return nil, err
	}
	return s, nil
}

// configFromCanonicalJSON inverts Config.CanonicalJSON.
func configFromCanonicalJSON(data []byte) (Config, error) {
	var cc struct {
		Cores           int
		Policy          PolicyKind
		TimeCompression uint64
		Warmup          uint64
		Budget          uint64
		FastForward     bool
		Multithreaded   bool
		Seed            uint64
		Scenario        *Scenario
		DeltaParams     *core.Params
		IdealConfig     *central.IdealConfig
		PolicyParams    map[string]json.RawMessage
	}
	if err := json.Unmarshal(data, &cc); err != nil {
		return Config{}, fmt.Errorf("delta: snapshot config: %w", err)
	}
	return Config{
		Cores:              cc.Cores,
		Policy:             cc.Policy,
		TimeCompression:    cc.TimeCompression,
		WarmupInstructions: cc.Warmup,
		BudgetInstructions: cc.Budget,
		FastForward:        cc.FastForward,
		Multithreaded:      cc.Multithreaded,
		Seed:               cc.Seed,
		Scenario:           cc.Scenario,
		DeltaParams:        cc.DeltaParams,
		IdealConfig:        cc.IdealConfig,
		PolicyParams:       cc.PolicyParams,
	}, nil
}
