package delta

import "testing"

// allPolicyKinds lists every registered policy as a PolicyKind, so the
// facade's contract tests (construction, checked runs, snapshot equivalence,
// scenario chaos) automatically cover new registrations.
func allPolicyKinds() []PolicyKind {
	var out []PolicyKind
	for _, name := range Policies() {
		out = append(out, PolicyKind(name))
	}
	return out
}

func TestFacadeQuickRun(t *testing.T) {
	sim := NewSimulator(Config{
		Cores:              16,
		Policy:             PolicyDelta,
		WarmupInstructions: 60_000,
		BudgetInstructions: 50_000,
	})
	sim.LoadMix("w5")
	res := sim.Run()
	if len(res.Cores) != 16 {
		t.Fatalf("results for %d cores", len(res.Cores))
	}
	if g := res.GeoMeanIPC(); g <= 0 || g > 4.1 {
		t.Fatalf("geomean IPC %v", g)
	}
	if sim.Delta() == nil {
		t.Fatal("delta policy not exposed")
	}
}

func TestFacadePoliciesConstruct(t *testing.T) {
	for _, p := range allPolicyKinds() {
		sim := NewSimulator(Config{Cores: 16, Policy: p,
			WarmupInstructions: 10_000, BudgetInstructions: 10_000})
		sim.SetWorkload(0, Workload{App: "omnetpp"})
		res := sim.Run()
		if res.Policy != p {
			t.Fatalf("policy %v reported %v", p, res.Policy)
		}
	}
}

func TestFacadeCustomWorkloadByShortCode(t *testing.T) {
	sim := NewSimulator(Config{Cores: 16,
		WarmupInstructions: 10_000, BudgetInstructions: 10_000})
	sim.SetWorkload(3, Workload{App: "xa"})
	res := sim.Run()
	if len(res.Cores) != 1 || res.Cores[0].Core != 3 {
		t.Fatalf("unexpected results %+v", res.Cores)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := LookupApp("nosuchapp"); err == nil {
		t.Fatal("expected lookup error")
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("unknown policy", func() {
		NewSimulator(Config{Cores: 16, Policy: "bogus"})
	})
	mustPanic("run without workloads", func() {
		NewSimulator(Config{Cores: 16}).Run()
	})
	mustPanic("double run", func() {
		s := NewSimulator(Config{Cores: 16,
			WarmupInstructions: 5_000, BudgetInstructions: 5_000})
		s.SetWorkload(0, Workload{App: "povray"})
		s.Run()
		s.Run()
	})
	mustPanic("empty workload", func() {
		NewSimulator(Config{Cores: 16}).SetWorkload(0, Workload{})
	})
}

func TestFacadeInventory(t *testing.T) {
	if len(Apps()) != 29 {
		t.Fatalf("%d apps", len(Apps()))
	}
	if len(MixNames()) != 15 {
		t.Fatalf("%d mixes", len(MixNames()))
	}
}

func TestFacade64Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core run is slow")
	}
	sim := NewSimulator(Config{
		Cores:              64,
		Policy:             PolicyDelta,
		WarmupInstructions: 40_000,
		BudgetInstructions: 30_000,
	})
	sim.LoadMix("w3")
	res := sim.Run()
	if len(res.Cores) != 64 {
		t.Fatalf("results for %d cores", len(res.Cores))
	}
	if g := res.GeoMeanIPC(); g <= 0 {
		t.Fatalf("geomean %v", g)
	}
}

func TestFacadeRejectsNonPow2Cores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 36 cores")
		}
	}()
	NewSimulator(Config{Cores: 36})
}

func TestFacadeCheckedRunAllPolicies(t *testing.T) {
	// Every registered policy under the invariant harness end to end through
	// the public API: a violation anywhere in the enforcement path panics the
	// run.
	for _, p := range allPolicyKinds() {
		sim := NewSimulator(Config{Cores: 16, Policy: p, Check: true,
			WarmupInstructions: 10_000, BudgetInstructions: 20_000})
		sim.LoadMix("w2")
		if res := sim.Run(); len(res.Cores) != 16 {
			t.Fatalf("%v: results for %d cores", p, len(res.Cores))
		}
	}
}

// TestFacadeColumnarRecorder runs a simulation into a columnar segment sink
// through the facade's WithRecorders option and reads the series back.
func TestFacadeColumnarRecorder(t *testing.T) {
	dir := t.TempDir()
	cw, err := NewColumnarRecorder(ColumnarConfig{Dir: dir, Job: "facade-test"})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemoryRecorder(0)
	sim, err := New(
		WithCores(16),
		WithPolicy(PolicyDelta),
		WithWarmup(10_000),
		WithBudget(10_000),
		WithRecorders(mem, cw),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.LoadMixE("w2"); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Samples()) == 0 {
		t.Fatal("WithRecorders dropped the memory recorder")
	}
	d, err := OpenColumnarDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := d.Range(ColumnarQuery{}, func(ColumnarRow) bool { rows++; return true }); err != nil {
		t.Fatal(err)
	}
	if rows != len(mem.Samples()) {
		t.Fatalf("columnar raw rows %d != memory samples %d", rows, len(mem.Samples()))
	}
	if d.Job() != "facade-test" {
		t.Fatalf("job %q", d.Job())
	}
}
