package delta

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"delta/internal/trace"
)

func TestNewSimulatorEErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown policy", Config{Cores: 16, Policy: "bogus"}, "unknown policy"},
		{"non-pow2 cores", Config{Cores: 9}, "power of two"},
		{"non-square cores", Config{Cores: 8}, "square"},
		{"negative cores", Config{Cores: -4}, "power of two"},
	}
	for _, tc := range cases {
		sim, err := NewSimulatorE(tc.cfg)
		if err == nil || sim != nil {
			t.Fatalf("%s: expected error, got sim=%v err=%v", tc.name, sim, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if sim, err := NewSimulatorE(Config{}); err != nil || sim == nil {
		t.Fatalf("defaulted config should construct: sim=%v err=%v", sim, err)
	}
}

func TestLoadMixEAndSetWorkloadEErrors(t *testing.T) {
	sim, err := NewSimulatorE(Config{Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.LoadMixE("w999"); err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("unknown mix error = %v", err)
	}
	if err := sim.SetWorkloadE(99, Workload{App: "mcf"}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range core error = %v", err)
	}
	if err := sim.SetWorkloadE(0, Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if err := sim.SetWorkloadE(0, Workload{App: "nosuchapp"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := sim.SetWorkloadE(0, Workload{App: "mcf", Generator: trace.NewStreamGen(0, 64)}); err == nil {
		t.Fatal("workload with both App and Generator accepted")
	}
	if err := sim.LoadMixE("w2"); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}

	// A 4-core chip is a valid mesh but cannot host a 16-slot mix.
	sim4, err := NewSimulatorE(Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim4.LoadMixE("w2"); err == nil || !strings.Contains(err.Error(), "multiple of 16") {
		t.Fatalf("mix on 4 cores error = %v", err)
	}
}

func TestCanonicalJSONDeterminism(t *testing.T) {
	a, err := Config{}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The zero config and its explicit-default spelling are one cache key.
	b, err := Config{Cores: 16, Policy: PolicyDelta, TimeCompression: 50,
		WarmupInstructions: 400_000, BudgetInstructions: 250_000, Seed: 1}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical forms differ:\n%s\n%s", a, b)
	}
	c, err := Config{Seed: 2}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds share a canonical form")
	}
}

// cancellingGen fires a callback after a fixed number of accesses, then
// keeps emitting; the run must stop at the next quantum boundary.
type cancellingGen struct {
	onAccess func()
	after    int
	n        int
}

func (g *cancellingGen) Next() trace.Access {
	g.n++
	if g.n == g.after {
		g.onAccess()
	}
	return trace.Access{Line: uint64(g.n % 4096), Gap: 3}
}

func TestRunCtxPreCanceledRunsNothing(t *testing.T) {
	sim, err := NewSimulatorE(Config{Cores: 16,
		WarmupInstructions: 10_000, BudgetInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	sim.LoadMix("w2")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sim.RunCtx(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap ErrCanceled and context.Canceled", err)
	}
	if now := sim.chip.Now(); now != 0 {
		t.Fatalf("pre-canceled run advanced to cycle %d; want 0 quanta", now)
	}
}

func TestRunCtxStopsWithinOneQuantum(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sim, err := NewSimulatorE(Config{Cores: 16,
		WarmupInstructions: 1_000_000, BudgetInstructions: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 pulls the trigger mid-quantum; every other core would happily
	// keep simulating for a long time. At the cancel instant the chip's
	// clock reads the start of the in-progress quantum, and the run must
	// stop when that quantum completes — one quantum later at most.
	var cycleAtCancel uint64
	gen := &cancellingGen{after: 50, onAccess: func() {
		cycleAtCancel = sim.chip.Now()
		cancel()
	}}
	sim.SetWorkload(0, Workload{Generator: gen})
	for i := 1; i < 16; i++ {
		sim.SetWorkload(i, Workload{App: "mcf"})
	}
	res, err := sim.RunCtx(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
	quantum := sim.chip.Cfg.Quantum
	if now := sim.chip.Now(); now > cycleAtCancel+quantum {
		t.Fatalf("canceled at cycle %d but chip ran to %d (more than one quantum of %d)",
			cycleAtCancel, now, quantum)
	}
	// Partial results are still rendered.
	if len(res.Cores) != 16 {
		t.Fatalf("partial result has %d cores", len(res.Cores))
	}
}

func TestRunCtxNilErrorOnCompletion(t *testing.T) {
	sim, err := NewSimulatorE(Config{Cores: 16,
		WarmupInstructions: 10_000, BudgetInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkload(0, Workload{App: "omnetpp"})
	res, err := sim.RunCtx(context.Background())
	if err != nil {
		t.Fatalf("uncanceled RunCtx returned %v", err)
	}
	if len(res.Cores) != 1 || res.Cores[0].IPC <= 0 {
		t.Fatalf("unexpected result %+v", res.Cores)
	}
}
