package delta

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"delta/internal/server/api"
	"delta/internal/trace"
)

// runToBoundary runs sim until the k-th quantum boundary, then cancels; the
// chip rests at an exact boundary when RunCtx returns.
func runToBoundary(t *testing.T, sim *Simulator, k int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	sim.chip.SetCheckpoint(1, func(uint64) {
		n++
		if n == k {
			cancel()
		}
	})
	if _, err := sim.RunCtx(ctx); err == nil {
		t.Fatalf("run finished before boundary %d; shrink the budget", k)
	}
}

func newTestSim(t *testing.T, pol PolicyKind, opts ...Option) *Simulator {
	t.Helper()
	// Sized so the full matrix (4 policies × 2 boundaries, each a reference
	// run plus a restored run) stays tractable under -race on a 1-CPU host;
	// a 1000-cycle quantum still gives well over 4 boundaries per run.
	sim, err := New(append([]Option{
		WithCores(16), WithPolicy(pol), WithWarmup(1000), WithBudget(16000), WithSeed(7),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestSnapshotRestoreEquivalence is the correctness bar of the snapshot
// subsystem: for every policy, run-to-completion must produce bit-identical
// state to run→snapshot→restore→run, at more than one interruption point.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, pol := range allPolicyKinds() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			t.Parallel()
			ref := newTestSim(t, pol)
			ref.LoadMix("w1")
			if _, err := ref.RunCtx(context.Background()); err != nil {
				t.Fatal(err)
			}
			want := ref.Fingerprint()
			wantRes, _ := json.Marshal(ref.chip.Results())

			for _, k := range []int{1, 4} {
				a := newTestSim(t, pol)
				a.LoadMix("w1")
				runToBoundary(t, a, k)
				snap, err := a.Snapshot()
				if err != nil {
					t.Fatalf("boundary %d: snapshot: %v", k, err)
				}
				data, err := snap.Encode()
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := DecodeSnapshot(data)
				if err != nil {
					t.Fatalf("boundary %d: decode: %v", k, err)
				}
				b, err := Restore(decoded, WithCheck(true))
				if err != nil {
					t.Fatalf("boundary %d: restore: %v", k, err)
				}
				if _, err := b.RunCtx(context.Background()); err != nil {
					t.Fatalf("boundary %d: resumed run: %v", k, err)
				}
				if got := b.Fingerprint(); got != want {
					t.Errorf("boundary %d: fingerprint diverged\n got %s\nwant %s", k, got, want)
				}
				gotRes, _ := json.Marshal(b.chip.Results())
				if !bytes.Equal(gotRes, wantRes) {
					t.Errorf("boundary %d: results diverged\n got %s\nwant %s", k, gotRes, wantRes)
				}
			}
		})
	}
}

// TestSnapshotEncodeDeterministic: the same state must always serialize to
// the same bytes (the service compares cached results and checkpoints
// byte-for-byte).
func TestSnapshotEncodeDeterministic(t *testing.T) {
	sim := newTestSim(t, PolicyDelta)
	sim.LoadMix("w2")
	runToBoundary(t, sim, 2)
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two Encode calls of one snapshot differ")
	}
	// And a decode→re-encode round trip is stable too.
	decoded, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("decode→encode round trip changed the bytes")
	}
}

// TestSnapshotVersionSkew: snapshots from another schema version are rejected
// with the typed sentinel.
func TestSnapshotVersionSkew(t *testing.T) {
	sim := newTestSim(t, PolicySnuca)
	sim.SetWorkload(0, Workload{App: "mcf"})
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	skewed := bytes.Replace(data, []byte(`"schema_version":1`), []byte(`"schema_version":99`), 1)
	if bytes.Equal(skewed, data) {
		t.Fatal("version field not found in encoding")
	}
	if _, err := DecodeSnapshot(skewed); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("skewed decode error = %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotEveryAutoCheckpoint: WithSnapshotEvery publishes checkpoints
// through LastSnapshot, and a canceled run's final auto-checkpoint resumes to
// the reference result.
func TestSnapshotEveryAutoCheckpoint(t *testing.T) {
	ref := newTestSim(t, PolicyDelta)
	ref.LoadMix("w1")
	if _, err := ref.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	sim := newTestSim(t, PolicyDelta, WithSnapshotEvery(2))
	sim.LoadMix("w1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunCtx(ctx); err == nil {
		t.Fatal("pre-canceled run reported success")
	}
	snap := sim.LastSnapshot()
	if snap == nil {
		t.Fatal("no auto-checkpoint after canceled run")
	}
	resumed, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Fingerprint(); got != want {
		t.Fatalf("resumed fingerprint diverged\n got %s\nwant %s", got, want)
	}
}

// TestSnapshotCustomGenerator: workloads built from caller-supplied
// generators cannot be rebuilt by Restore and must be refused up front.
func TestSnapshotCustomGenerator(t *testing.T) {
	sim := newTestSim(t, PolicySnuca)
	sim.SetWorkload(0, Workload{Generator: trace.NewStreamGen(0, 4096)})
	if _, err := sim.Snapshot(); !errors.Is(err, ErrNotSnapshotable) {
		t.Fatalf("custom-generator snapshot error = %v, want ErrNotSnapshotable", err)
	}
}

// TestRestoreRejectsMismatches covers the structured failure paths.
func TestRestoreRejectsMismatches(t *testing.T) {
	if _, err := Restore(nil); err == nil {
		t.Fatal("Restore(nil) succeeded")
	}
	sim := newTestSim(t, PolicySnuca)
	sim.SetWorkload(0, Workload{App: "mcf"})
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Overriding a result-affecting knob changes the chip the snapshot no
	// longer fits.
	if _, err := Restore(snap, WithPolicy(PolicyDelta)); err == nil {
		t.Fatal("policy-mismatched restore succeeded")
	}
	if _, err := Restore(snap, WithCores(64)); err == nil {
		t.Fatal("geometry-mismatched restore succeeded")
	}
}

// TestResultJSONRoundTrip: the wire Result must round-trip byte-equal, with
// no NaN leaking from idle cores (satellite: stable cached-result compare).
func TestResultJSONRoundTrip(t *testing.T) {
	sim := newTestSim(t, PolicySnuca)
	// One busy core, the rest idle: idle cores retire no instructions and
	// historically produced NaN geomeans.
	sim.SetWorkload(0, Workload{App: "mcf"})
	res, err := sim.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g := res.GeoMeanIPC(); g != res.GeoMeanIPC() { // NaN check
		t.Fatal("GeoMeanIPC is NaN")
	}
	wire := api.Result{GeomeanIPC: res.GeoMeanIPC(), InvalidatedLines: res.InvalidatedLines}
	for _, c := range res.Cores {
		wire.Cores = append(wire.Cores, api.CoreResult{
			Core: c.Core, Instructions: c.Instructions, Cycles: c.Cycles,
			IPC: c.IPC, MPKI: c.MPKI, MemMPKI: c.MemMPKI,
			LocalHitFrac: c.LocalHitFrac, MLP: c.MLP,
		})
	}
	a, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back api.Result
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Result JSON round trip not byte-stable\n a %s\n b %s", a, b)
	}
}

// TestDeprecatedConstructorsMatchNew: the legacy constructors are thin
// wrappers and must build identical simulators.
func TestDeprecatedConstructorsMatchNew(t *testing.T) {
	run := func(sim *Simulator) string {
		sim.LoadMix("w1")
		if _, err := sim.RunCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sim.Fingerprint()
	}
	cfg := Config{Cores: 16, Policy: PolicyDelta, WarmupInstructions: 2000, BudgetInstructions: 40000, Seed: 3}
	legacy, err := NewSimulatorE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := New(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := run(legacy), run(modern); a != b {
		t.Fatalf("NewSimulatorE and New diverge:\n %s\n %s", a, b)
	}
}

// FuzzSnapshotRestore drives the equivalence property from fuzzed inputs:
// policy choice, interruption boundary, and seed.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(7))
	f.Add(uint8(3), uint8(3), uint8(1))
	f.Add(uint8(0), uint8(2), uint8(42))
	f.Fuzz(func(t *testing.T, polByte, boundary, seed uint8) {
		pols := allPolicyKinds()
		pol := pols[int(polByte)%len(pols)]
		k := 1 + int(boundary)%4
		build := func() *Simulator {
			sim, err := New(WithCores(16), WithPolicy(pol), WithWarmup(1000),
				WithBudget(20000), WithSeed(uint64(seed)))
			if err != nil {
				t.Fatal(err)
			}
			sim.LoadMix("w3")
			return sim
		}
		ref := build()
		if _, err := ref.RunCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		a := build()
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		a.chip.SetCheckpoint(1, func(uint64) {
			n++
			if n == k {
				cancel()
			}
		})
		if _, err := a.RunCtx(ctx); err == nil {
			return // budget crossed before the fuzzed boundary: nothing to resume
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Restore(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.RunCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got, want := b.Fingerprint(), ref.Fingerprint(); got != want {
			t.Fatalf("policy %s boundary %d seed %d: fingerprint diverged\n got %s\nwant %s",
				pol, k, seed, got, want)
		}
	})
}
