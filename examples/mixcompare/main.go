// mixcompare sweeps one workload mix across all four partitioning policies
// and prints the per-policy breakdown plus DELTA's final capacity
// allocation — the scenario of the paper's Figures 5, 7 and 8.
//
//	go run ./examples/mixcompare          # default mix w6
//	go run ./examples/mixcompare w13
package main

import (
	"fmt"
	"os"

	"delta"
	"delta/internal/metrics"
)

func main() {
	mix := "w6"
	if len(os.Args) > 1 {
		mix = os.Args[1]
	}

	policies := []delta.PolicyKind{
		delta.PolicySnuca, delta.PolicyPrivate, delta.PolicyDelta, delta.PolicyIdeal,
	}
	results := map[delta.PolicyKind]delta.Result{}
	var deltaSim *delta.Simulator
	for _, p := range policies {
		sim, err := delta.New(
			delta.WithCores(16),
			delta.WithPolicy(p),
			delta.WithWarmup(300_000),
			delta.WithBudget(200_000),
		)
		if err != nil {
			panic(err)
		}
		sim.LoadMix(mix)
		results[p] = sim.Run()
		if p == delta.PolicyDelta {
			deltaSim = sim
		}
	}

	base := results[delta.PolicySnuca].GeoMeanIPC()
	t := metrics.NewTable(fmt.Sprintf("mix %s on a 16-core CMP", mix),
		"policy", "geomean IPC", "vs s-nuca")
	for _, p := range policies {
		g := results[p].GeoMeanIPC()
		t.AddRow(string(p), fmt.Sprintf("%.4f", g), fmt.Sprintf("%+.1f%%", (g/base-1)*100))
	}
	fmt.Println(t.String())

	fmt.Println("DELTA's final allocations (ways across all banks):")
	d := deltaSim.Delta()
	for _, c := range results[delta.PolicyDelta].Cores {
		bar := ""
		for i := 0; i < d.TotalWays(c.Core)/2; i++ {
			bar += "#"
		}
		fmt.Printf("  core %2d %3d ways %s\n", c.Core, d.TotalWays(c.Core), bar)
	}
	fmt.Printf("\nchallenges won/sent: %d/%d, retreats: %d, invalidated lines: %d\n",
		d.Stats.ChallengesWon, d.Stats.ChallengesSent, d.Stats.Retreats, d.Stats.InvalLines)
}
