// multithreaded runs a SPLASH2-style shared-memory application on a 16-core
// chip with DELTA's Section II-E support: pages are classified private or
// shared R-NUCA-style; private pages follow the CBT while shared pages use
// the fixed S-NUCA mapping, keeping coherence intact.
//
//	go run ./examples/multithreaded            # default app: ocean.cont
//	go run ./examples/multithreaded water.nsq
package main

import (
	"fmt"
	"os"

	"delta"
	"delta/internal/workloads"
)

func main() {
	name := "ocean.cont"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	app := workloads.Splash2ByName(name)

	page, block := app.SharedApp(16, 1).PrivateRatios(20000)
	fmt.Printf("%s: %.1f%% private pages, %.1f%% private blocks (paper: %.1f%% pages)\n",
		name, page*100, block*100, app.PagePrivate)

	run := func(policy delta.PolicyKind) uint64 {
		sim, err := delta.New(
			delta.WithCores(16),
			delta.WithPolicy(policy),
			delta.WithMultithreaded(true),
			delta.WithWarmup(200_000),
			delta.WithBudget(150_000),
		)
		if err != nil {
			panic(err)
		}
		gens := app.ThreadGenerators(16, 1)
		for t, g := range gens {
			sim.SetWorkload(t, delta.Workload{Generator: g, SharedAddressSpace: true})
		}
		all := make([]int, 16)
		for i := range all {
			all[i] = i
		}
		sim.SetProcessGroup(all, 0) // threads of one process never challenge each other
		res := sim.Run()
		// Region-of-interest metric: cycles of the longest-running thread.
		var max uint64
		for _, c := range res.Cores {
			if c.Cycles > max {
				max = c.Cycles
			}
		}
		return max
	}

	snuca := run(delta.PolicySnuca)
	private := run(delta.PolicyPrivate)
	dl := run(delta.PolicyDelta)
	fmt.Printf("ROI cycles  s-nuca: %d  private: %d  delta: %d\n", snuca, private, dl)
	fmt.Printf("delta speedup vs s-nuca: %+.1f%%  vs private: %+.1f%%\n",
		(float64(snuca)/float64(dl)-1)*100, (float64(private)/float64(dl)-1)*100)
}
