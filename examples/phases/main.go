// phases demonstrates why frequent reconfiguration matters (the paper's
// Fig. 13): a workload whose capacity demand alternates between phases is
// simulated under the ideal centralized policy at a fast and at a 100x
// slower reallocation interval — the slow configuration keeps serving the
// previous phase's allocation.
//
//	go run ./examples/phases
package main

import (
	"fmt"

	"delta"
	"delta/internal/central"
	"delta/internal/trace"
)

func main() {
	// A phased app on core 0: alternating 2 MB and 64 KB working sets.
	// Steady cache-sensitive neighbours fill the rest of the chip.
	mkPhased := func() trace.Generator {
		return trace.NewShaper(trace.NewPhasedGen(
			trace.Phase{Gen: trace.NewRegionGen(0, trace.Lines(2048), 1), Accesses: 30_000},
			trace.Phase{Gen: trace.NewRegionGen(0, trace.Lines(64), 2), Accesses: 30_000},
		), trace.ShaperConfig{MemFraction: 0.3, Burst: 4, Seed: 3})
	}

	run := func(interval uint64) float64 {
		cfg := central.DefaultIdealConfig()
		cfg.Interval = interval
		sim, err := delta.New(
			delta.WithCores(16),
			delta.WithPolicy(delta.PolicyIdeal),
			delta.WithPolicyParams(delta.PolicyIdeal, cfg),
			delta.WithWarmup(300_000),
			delta.WithBudget(250_000),
		)
		if err != nil {
			panic(err)
		}
		sim.SetWorkload(0, delta.Workload{Generator: mkPhased()})
		for i := 1; i < 16; i++ {
			sim.SetWorkload(i, delta.Workload{App: "omnetpp"})
		}
		return sim.Run().GeoMeanIPC()
	}

	fast := run(80_000)    // 1 ms equivalent under 50x time compression
	slow := run(8_000_000) // 100 ms equivalent
	fmt.Printf("ideal centralized @ 1ms-equivalent:   geomean IPC %.4f\n", fast)
	fmt.Printf("ideal centralized @ 100ms-equivalent: geomean IPC %.4f\n", slow)
	fmt.Printf("frequent reconfiguration advantage: %+.1f%%\n", (fast/slow-1)*100)
}
