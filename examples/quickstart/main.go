// Quickstart: simulate one multi-programmed SPEC mix on a 16-core tiled CMP
// under DELTA and under the unpartitioned S-NUCA baseline, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"delta"
)

func main() {
	run := func(policy delta.PolicyKind) delta.Result {
		// The experiment harness's default compression (DESIGN.md §3).
		sim, err := delta.New(
			delta.WithCores(16),
			delta.WithPolicy(policy),
			delta.WithWarmup(400_000),
			delta.WithBudget(250_000),
		)
		if err != nil {
			panic(err)
		}
		sim.LoadMix("w2") // Table IV: thrashing + sensitive apps
		return sim.Run()
	}

	base := run(delta.PolicySnuca)
	part := run(delta.PolicyDelta)

	fmt.Printf("%-12s geomean IPC %.4f\n", "s-nuca", base.GeoMeanIPC())
	fmt.Printf("%-12s geomean IPC %.4f\n", "delta", part.GeoMeanIPC())
	fmt.Printf("speedup: %+.1f%%\n", (part.GeoMeanIPC()/base.GeoMeanIPC()-1)*100)
	fmt.Printf("DELTA control traffic: %.3f%% of NoC messages\n",
		part.ControlMessageFraction*100)

	fmt.Println("\nper-core IPC (snuca -> delta):")
	for i := range part.Cores {
		b, d := base.Cores[i], part.Cores[i]
		fmt.Printf("  core %2d  %.3f -> %.3f\n", i, b.IPC, d.IPC)
	}
}
