package delta

import (
	"encoding/json"

	"delta/internal/central"
	"delta/internal/core"
)

// Option configures a Simulator built by New. Options apply in order over a
// zero Config, so later options win and New() alone yields the canonical
// 16-core DELTA experiment.
type Option func(*Config)

// New builds a simulator from functional options:
//
//	sim, err := delta.New(delta.WithCores(16), delta.WithPolicy(delta.PolicyDelta))
//
// It returns an error (never panics) on invalid configuration, making it the
// constructor for both programmatic use and untrusted input such as the
// serving layer.
func New(opts ...Option) (*Simulator, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return newSimulator(cfg)
}

// WithConfig replaces the whole configuration; options after it adjust
// individual fields.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithPolicy selects the partitioning scheme.
func WithPolicy(p PolicyKind) Option {
	return func(c *Config) { c.Policy = p }
}

// WithCores sets the tile count (must be a square power of two).
func WithCores(n int) Option {
	return func(c *Config) { c.Cores = n }
}

// WithTimeCompression divides the paper's reconfiguration intervals
// (DESIGN.md §3).
func WithTimeCompression(tc uint64) Option {
	return func(c *Config) { c.TimeCompression = tc }
}

// WithWarmup sets the per-core fast-forward window, in instructions.
func WithWarmup(instructions uint64) Option {
	return func(c *Config) { c.WarmupInstructions = instructions }
}

// WithFastForward replaces simulated warmup with analytical seeding: cores
// whose generators expose a locality model start the measured window
// immediately, with UMON counters and cache contents derived from closed-form
// stack-distance curves (DESIGN.md §10). Cores without a model keep the
// simulated warmup.
func WithFastForward(on bool) Option {
	return func(c *Config) { c.FastForward = on }
}

// WithBudget sets the per-core measured window, in instructions.
func WithBudget(instructions uint64) Option {
	return func(c *Config) { c.BudgetInstructions = instructions }
}

// WithMultithreaded enables R-NUCA-style shared-page handling.
func WithMultithreaded(on bool) Option {
	return func(c *Config) { c.Multithreaded = on }
}

// WithSeed sets the workload randomness seed.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithRecorder attaches a telemetry recorder.
func WithRecorder(r Recorder) Option {
	return func(c *Config) { c.Recorder = r }
}

// WithRecorders attaches several telemetry recorders at once, fanning every
// record out to each (e.g. an in-memory recorder for assertions plus a
// columnar segment sink for durable range queries). Zero recorders leave the
// configuration unchanged; one is attached directly.
func WithRecorders(rs ...Recorder) Option {
	return func(c *Config) {
		switch len(rs) {
		case 0:
		case 1:
			c.Recorder = rs[0]
		default:
			c.Recorder = NewMultiRecorder(rs...)
		}
	}
}

// WithSampleEvery sets the telemetry sampling period, in quanta.
func WithSampleEvery(quanta int) Option {
	return func(c *Config) { c.SampleEvery = quanta }
}

// WithCheck enables the runtime invariant harness.
func WithCheck(on bool) Option {
	return func(c *Config) { c.Check = on }
}

// WithSnapshotEvery auto-checkpoints every n quantum boundaries during
// Run/RunCtx; the latest checkpoint is available through LastSnapshot.
func WithSnapshotEvery(n int) Option {
	return func(c *Config) { c.SnapshotEvery = n }
}

// WithScenario scripts dynamic events (arrivals, departures, migrations,
// load spikes, phase storms) applied at quantum boundaries during the run.
// The scenario is validated against the chip's initial occupancy when Run
// starts; it changes results and is part of the configuration's canonical
// identity. nil clears a previously set scenario.
func WithScenario(sc *Scenario) Option {
	return func(c *Config) { c.Scenario = sc }
}

// WithPolicyParams overrides the named policy's parameters uniformly for
// every registered policy: params is marshaled to JSON deterministically and
// unmarshaled onto the policy's scale-resolved defaults at construction, so
// a full parameter struct (e.g. core.Params, lfoc.Config) replaces
// everything while a partial map tweaks individual knobs. The marshaled
// bytes join CanonicalJSON, changing the configuration's content address.
// A value that cannot marshal surfaces as an error from New.
func WithPolicyParams(name PolicyKind, params any) Option {
	return func(c *Config) {
		if c.PolicyParams == nil {
			c.PolicyParams = make(map[string]json.RawMessage)
		}
		raw, err := json.Marshal(params)
		if err != nil {
			// Stash invalid bytes; validate rejects them so New reports the
			// problem instead of silently dropping the override.
			raw = json.RawMessage("!unmarshalable: " + err.Error())
		}
		c.PolicyParams[string(name)] = raw
	}
}

// WithDeltaParams overrides DELTA's knobs (PolicyDelta only).
//
// Deprecated: Use WithPolicyParams(PolicyDelta, p), which works uniformly
// across registered policies.
func WithDeltaParams(p core.Params) Option {
	return func(c *Config) { c.DeltaParams = &p }
}

// WithIdealConfig overrides the centralized policy's knobs (PolicyIdeal
// only).
//
// Deprecated: Use WithPolicyParams(PolicyIdeal, ic), which works uniformly
// across registered policies.
func WithIdealConfig(ic central.IdealConfig) Option {
	return func(c *Config) { c.IdealConfig = &ic }
}
