// Command delta-bench regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index). Each experiment prints a text
// table with the same rows/series as the paper; EXPERIMENTS.md records the
// measured outputs next to the paper's numbers.
//
// Usage:
//
//	delta-bench                  # run everything, one sim per CPU
//	delta-bench -exp fig5        # one experiment
//	delta-bench -exp fig9 -quick # compressed scale for smoke runs
//	delta-bench -parallel 1      # sequential (historical behaviour)
//
// Campaigns fan independent simulations across -parallel workers (default
// runtime.NumCPU()); results are bit-identical at any worker count.
//
// Experiments: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 table6
// overheads ablations churn matrix all
//
// The churn experiment replays a dynamic-membership scenario (arrivals,
// departures, migration, phase storms) under every registered policy and
// reports fairness (Jain index, unfairness vs private) next to raw
// performance; -scenario substitutes a JSON script for the built-in one.
//
// The matrix experiment runs every registered policy — the paper's four plus
// the policy zoo (lfoc, carma, bankbw) and any external registrations — on
// static mixes and reports ANTT, STP, unfairness and Jain's index per policy
// (DESIGN.md §13).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"delta"
	"delta/internal/experiments"
	"delta/internal/profiling"
	"delta/internal/version"
	"delta/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig5..fig13, table6, overheads, churn, matrix, all)")
	quick := flag.Bool("quick", false, "use the further-compressed quick scale")
	scenarioPath := flag.String("scenario", "", "JSON scenario file for the churn experiment (default: the built-in churn script)")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations per campaign (1 = sequential)")
	check := flag.Bool("check", false, "run simulator-wide invariant checks on every chip (slow; panics on the first violation)")
	fastforward := flag.Bool("fastforward", false, "skip simulated warmup: seed UMON counters and cache contents from the workloads' analytical locality models (DESIGN.md §10)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("delta-bench", version.String())
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "delta-bench:", err)
		}
	}()

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	sc.Seed = *seed
	sc.Workers = *parallel
	sc.Check = *check
	sc.FastForward = *fastforward

	suite16 := experiments.NewSuite(sc, 16)
	suite64 := experiments.NewSuite(sc, 64)

	var mixNames []string
	for _, m := range workloads.Mixes() {
		mixNames = append(mixNames, m.Name)
	}
	// PerApp and Fig6 never consult the S-NUCA run, so their prefetches skip it.
	dynPolicies := []string{"private", "delta", "ideal"}

	run := func(name string, fn func()) {
		want := *exp
		if want != "all" && want != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Second))
	}

	// Each experiment prefetches the (policy, mix) runs it needs across the
	// worker pool, then renders from suite cache hits. The figure drivers
	// themselves stay sequential consumers.
	run("fig5", func() {
		suite16.Prefetch(experiments.PaperPolicies, mixNames)
		fmt.Println(experiments.Fig5(suite16).Table())
	})
	run("fig6", func() {
		suite16.Prefetch(dynPolicies, mixNames)
		fmt.Println(experiments.Fig6(suite16).Table())
	})
	run("fig7", func() {
		suite16.Prefetch(dynPolicies, []string{"w2"})
		fmt.Println(experiments.PerApp(suite16, "w2").Table())
	})
	run("fig8", func() {
		suite16.Prefetch(dynPolicies, []string{"w3"})
		fmt.Println(experiments.PerApp(suite16, "w3").Table())
	})
	run("fig9", func() {
		suite64.Prefetch(experiments.PaperPolicies, mixNames)
		fmt.Println(experiments.Fig5(suite64).Table())
	})
	run("fig10", func() {
		suite64.Prefetch(dynPolicies, []string{"w2"})
		fmt.Println(experiments.PerApp(suite64, "w2").Table())
	})
	run("fig11", func() {
		suite64.Prefetch(dynPolicies, []string{"w13"})
		fmt.Println(experiments.PerApp(suite64, "w13").Table())
	})
	run("fig12", func() { fmt.Println(experiments.Fig12(sc).Table()) })
	run("fig13", func() { fmt.Println(experiments.Fig13(sc).Table()) })
	run("table6", func() { fmt.Println(experiments.TableVI(64, sc.Seed).Table()) })
	run("overheads", func() {
		mixes := []string{"w2", "w6"}
		tables := make([]string, len(mixes))
		experiments.ForEach(sc.Workers, len(mixes), func(i int) {
			tables[i] = experiments.Overheads(sc, mixes[i]).Table()
		})
		for _, t := range tables {
			fmt.Println(t)
		}
	})
	run("ablations", func() {
		for _, m := range []string{"w2", "w6"} {
			fmt.Println(experiments.AblationTable(experiments.Ablations(sc, m), m))
		}
	})
	run("churn", func() {
		script := experiments.ChurnScenario()
		if *scenarioPath != "" {
			data, err := os.ReadFile(*scenarioPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "delta-bench:", err)
				os.Exit(2)
			}
			script, err = delta.ParseScenario(data, 16, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "delta-bench:", err)
				os.Exit(2)
			}
		}
		for _, m := range []string{"w2", "w6"} {
			fmt.Println(experiments.ChurnWith(sc, m, 16, script).Table())
		}
	})
	run("matrix", func() {
		for _, m := range []string{"w2", "w6"} {
			fmt.Println(experiments.PolicyMatrix(sc, m, 16).Table())
		}
	})

	if !strings.Contains("fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 table6 overheads ablations churn matrix all", *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
