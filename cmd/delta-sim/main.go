// Command delta-sim runs a single simulation: one policy, one workload mix
// (or a single application on every core), one chip size — and prints
// per-core and aggregate results. It is the quickest way to poke at the
// simulator.
//
// Examples:
//
//	delta-sim -policy delta -mix w2
//	delta-sim -policy snuca -app mcf -cores 16
//	delta-sim -policy ideal -mix w13 -cores 64 -budget 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"delta"
	"delta/internal/metrics"
	"delta/internal/profiling"
)

func main() {
	policy := flag.String("policy", "delta", "snuca | private | delta | ideal")
	mix := flag.String("mix", "", "Table IV mix name (w1..w15)")
	app := flag.String("app", "", "run this SPEC model on every core instead of a mix")
	cores := flag.Int("cores", 16, "core count (perfect square, multiple of 16 for mixes)")
	warm := flag.Uint64("warmup", 400_000, "warm-up instructions per core")
	budget := flag.Uint64("budget", 250_000, "measured instructions per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	compress := flag.Uint64("compress", 50, "time compression of reconfiguration intervals")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if (*mix == "") == (*app == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -mix or -app is required")
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "delta-sim:", err)
		}
	}()

	sim := delta.NewSimulator(delta.Config{
		Cores:              *cores,
		Policy:             delta.PolicyKind(*policy),
		WarmupInstructions: *warm,
		BudgetInstructions: *budget,
		Seed:               *seed,
		TimeCompression:    *compress,
	})
	if *mix != "" {
		sim.LoadMix(*mix)
	} else {
		for i := 0; i < *cores; i++ {
			sim.SetWorkload(i, delta.Workload{App: *app})
		}
	}
	res := sim.Run()

	t := metrics.NewTable(fmt.Sprintf("%s on %d cores", *policy, *cores),
		"core", "ipc", "llc-mpki", "mem-mpki", "local-hit%", "mlp")
	for _, c := range res.Cores {
		t.AddRowf(fmt.Sprint(c.Core), c.IPC, c.MPKI, c.MemMPKI, c.LocalHitFrac*100, c.MLP)
	}
	fmt.Println(t.String())
	fmt.Printf("geomean IPC: %.4f\n", res.GeoMeanIPC())
	fmt.Printf("control traffic: %.3f%% of NoC messages\n", res.ControlMessageFraction*100)
	fmt.Printf("invalidated lines: %d\n", res.InvalidatedLines)
	if d := sim.Delta(); d != nil {
		fmt.Printf("delta stats: %+v\n", d.Stats)
		for _, c := range res.Cores {
			fmt.Printf("core %2d allocation: %d ways\n", c.Core, d.TotalWays(c.Core))
		}
	}
}
