// Command delta-sim runs single simulations: one workload mix (or a single
// application on every core), one chip size, and one or more policies — and
// prints per-core and aggregate results. It is the quickest way to poke at
// the simulator.
//
// -policy accepts a single scheme, a comma-separated list, or "all"; with
// several policies the simulations run concurrently across -parallel workers
// (default runtime.NumCPU()) while output keeps the requested order. Results
// are bit-identical at any worker count: each simulation owns all of its
// state.
//
// Examples:
//
//	delta-sim -policy delta -mix w2
//	delta-sim -policy snuca -app mcf -cores 16
//	delta-sim -policy all -mix w13 -cores 64 -budget 100000
//	delta-sim -policy snuca,delta -mix w2 -parallel 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"delta"
	"delta/internal/experiments"
	"delta/internal/metrics"
	"delta/internal/profiling"
	"delta/internal/version"
)

func main() {
	policy := flag.String("policy", "delta", `policy to simulate: any registered policy (snuca, private, delta, ideal, lfoc, carma, bankbw, ...), a comma-separated list, or "all" for every registered policy`)
	mix := flag.String("mix", "", "Table IV mix name (w1..w15)")
	app := flag.String("app", "", "run this SPEC model on every core instead of a mix")
	cores := flag.Int("cores", 16, "core count (perfect square, multiple of 16 for mixes)")
	warm := flag.Uint64("warmup", 400_000, "warm-up instructions per core")
	budget := flag.Uint64("budget", 250_000, "measured instructions per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	compress := flag.Uint64("compress", 50, "time compression of reconfiguration intervals")
	scenarioPath := flag.String("scenario", "", "JSON file scripting dynamic events (arrivals, departures, migration, spikes, storms) applied at quantum boundaries")
	parallel := flag.Int("parallel", runtime.NumCPU(), "workers when simulating several policies (1 = sequential)")
	check := flag.Bool("check", false, "run simulator-wide invariant checks every quantum and after every remap (slow; panics on the first violation)")
	fastforward := flag.Bool("fastforward", false, "skip simulated warmup: seed UMON counters and cache contents from the workloads' analytical locality models (DESIGN.md §10)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("delta-sim", version.String())
		return
	}
	if (*mix == "") == (*app == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -mix or -app is required")
		os.Exit(2)
	}

	policies := strings.Split(*policy, ",")
	if *policy == "all" {
		policies = experiments.PolicyNames()
	}

	var script *delta.Scenario
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-sim:", err)
			os.Exit(2)
		}
		script, err = delta.ParseScenario(data, *cores, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-sim:", err)
			os.Exit(2)
		}
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "delta-sim:", err)
		}
	}()

	// Build every simulator up front (setup is cheap and must see flag
	// errors before any run starts), fan the runs across the pool, then
	// print in the requested order.
	sims := make([]*delta.Simulator, len(policies))
	for i, p := range policies {
		sim, err := delta.New(delta.WithConfig(delta.Config{
			Cores:              *cores,
			Policy:             delta.PolicyKind(strings.TrimSpace(p)),
			WarmupInstructions: *warm,
			BudgetInstructions: *budget,
			Seed:               *seed,
			TimeCompression:    *compress,
			Check:              *check,
			FastForward:        *fastforward,
			Scenario:           script,
		}))
		if err != nil {
			fmt.Fprintln(os.Stderr, "delta-sim:", err)
			os.Exit(2)
		}
		sims[i] = sim
		if *mix != "" {
			sims[i].LoadMix(*mix)
		} else {
			for c := 0; c < *cores; c++ {
				sims[i].SetWorkload(c, delta.Workload{App: *app})
			}
		}
	}
	results := make([]delta.Result, len(sims))
	experiments.ForEach(*parallel, len(sims), func(i int) {
		results[i] = sims[i].Run()
	})
	for i := range sims {
		report(strings.TrimSpace(policies[i]), *cores, results[i], sims[i])
	}

	// With a private run in the set, every other policy's slowdown vector
	// has a baseline: print the cross-policy fairness summary. Result
	// vectors align entry for entry because every simulator ran the same
	// workloads — and, with -scenario, the same event script.
	var privateIPC []float64
	for i, p := range policies {
		if strings.TrimSpace(p) == "private" {
			privateIPC = ipcs(results[i])
		}
	}
	if privateIPC != nil && len(policies) > 1 {
		t := metrics.NewTable("fairness (ANTT/STP/unfairness vs private, Jain over per-core IPC)",
			"policy", "antt", "stp", "unfairness", "jain")
		for i, p := range policies {
			v := ipcs(results[i])
			t.AddRowf(strings.TrimSpace(p),
				metrics.ANTT(v, privateIPC), metrics.STP(v, privateIPC),
				metrics.Unfairness(v, privateIPC), metrics.JainIndex(v))
		}
		fmt.Println(t.String())
	}
}

// ipcs extracts the per-core IPC vector in result order.
func ipcs(res delta.Result) []float64 {
	out := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		out[i] = c.IPC
	}
	return out
}

// report prints one policy's run.
func report(policy string, cores int, res delta.Result, sim *delta.Simulator) {
	t := metrics.NewTable(fmt.Sprintf("%s on %d cores", policy, cores),
		"core", "ipc", "llc-mpki", "mem-mpki", "local-hit%", "mlp")
	for _, c := range res.Cores {
		t.AddRowf(fmt.Sprint(c.Core), c.IPC, c.MPKI, c.MemMPKI, c.LocalHitFrac*100, c.MLP)
	}
	fmt.Println(t.String())
	fmt.Printf("geomean IPC: %.4f\n", res.GeoMeanIPC())
	fmt.Printf("fairness (Jain index): %.4f\n", metrics.JainIndex(ipcs(res)))
	fmt.Printf("control traffic: %.3f%% of NoC messages\n", res.ControlMessageFraction*100)
	fmt.Printf("invalidated lines: %d\n", res.InvalidatedLines)
	if d := sim.Delta(); d != nil {
		fmt.Printf("delta stats: %+v\n", d.Stats)
		for _, c := range res.Cores {
			fmt.Printf("core %2d allocation: %d ways\n", c.Core, d.TotalWays(c.Core))
		}
	}
}
