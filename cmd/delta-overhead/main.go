// Command delta-overhead reproduces Table VI: the per-invocation cost of the
// centralized allocation algorithms (UCP Lookahead and the convex-hull
// Peekahead) as core count grows, with 16 ways per core. The absolute
// numbers depend on the host machine; the shape — Lookahead's steep
// polynomial growth versus Peekahead's gentle one — is the paper's argument
// for why centralized allocation cannot sustain a 1 ms reconfiguration
// interval at large core counts, and why DELTA's O(1) distributed
// computation can.
package main

import (
	"flag"
	"fmt"

	"delta/internal/experiments"
	"delta/internal/version"
)

func main() {
	max := flag.Int("max-cores", 64, "largest core count to time (doubling from 2)")
	seed := flag.Uint64("seed", 1, "synthetic curve seed")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("delta-overhead", version.String())
		return
	}
	fmt.Println(experiments.TableVI(*max, *seed).Table())
}
