// Command delta-coord runs the campaign fabric coordinator: an HTTP frontend
// that routes content-addressed simulation jobs across a fleet of
// delta-served workers with consistent hashing (same request → same worker,
// so per-worker single-flight deduplication holds fleet-wide), persists
// completed results in a disk-backed content-addressed store that survives
// restarts, and rebalances in-flight jobs when workers leave — gracefully via
// checkpoint handoff, or from scratch on worker loss (determinism makes the
// rerun byte-identical).
//
// API (JSON unless noted):
//
//	POST   /v1/simulations        submit one job (routed, deduplicated)
//	GET    /v1/simulations/{id}   job status and result
//	POST   /v1/batch              submit N jobs, stream N NDJSON results in
//	                              completion order
//	GET    /v1/fleet              worker states and job placement
//	POST   /v1/fleet/workers      register a worker {url}
//	DELETE /v1/fleet/workers?url= drain a worker out (checkpoint handoff)
//	GET    /healthz               liveness + version
//	GET    /readyz                503 until at least one worker is healthy
//	GET    /metrics               Prometheus text exposition
//
// Example:
//
//	delta-coord -addr :9090 -fleet http://localhost:8081,http://localhost:8082
//	curl -s localhost:9090/v1/batch -d '{"jobs":[{"mix":"w2","budget_instructions":20000}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"delta/internal/fabric"
	"delta/internal/version"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	fleet := flag.String("fleet", "", "comma-separated delta-served worker base URLs (more can join at runtime)")
	resultDir := flag.String("result-dir", "", "persist completed results to a content-addressed store here; duplicate submissions dedupe against it across coordinator restarts")
	replicas := flag.Int("replicas", 64, "virtual nodes per worker on the consistent-hash ring")
	healthEvery := flag.Duration("health-every", 2*time.Second, "worker health-probe interval")
	failAfter := flag.Int("health-fail-after", 3, "consecutive probe failures before a worker is marked down and its jobs rebalance")
	pollEvery := flag.Duration("poll-every", 50*time.Millisecond, "per-job status poll interval")
	suspendTimeout := flag.Duration("suspend-timeout", 30*time.Second, "max wait for a draining worker to checkpoint a job before restarting it fresh")
	maxBatch := flag.Int("max-batch", 1024, "max jobs per POST /v1/batch")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("delta-coord", version.String())
		return
	}

	var workers []string
	for _, u := range strings.Split(*fleet, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workers = append(workers, u)
		}
	}
	log.Printf("delta-coord %s starting on %s (%d workers, replicas=%d)",
		version.String(), *addr, len(workers), *replicas)

	coord, err := fabric.New(fabric.Config{
		Workers:        workers,
		Replicas:       *replicas,
		ResultDir:      *resultDir,
		HealthEvery:    *healthEvery,
		FailAfter:      *failAfter,
		PollEvery:      *pollEvery,
		SuspendTimeout: *suspendTimeout,
		MaxBatch:       *maxBatch,
		Version:        version.String(),
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("delta-coord: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}

	errCh := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("delta-coord: %v", err)
	case sig := <-sigCh:
		log.Printf("delta-coord: %v received, shutting down", sig)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Shutdown(shutCtx); err != nil {
		log.Printf("delta-coord: shutdown incomplete: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("delta-coord: http shutdown: %v", err)
	}
	log.Printf("delta-coord: exit")
}
