// Command delta-served runs the simulation service: a long-lived HTTP
// frontend that accepts simulation requests, deduplicates identical
// submissions single-flight against a content-addressed result cache, fans
// accepted jobs across a worker pool behind a bounded queue (full queue ⇒
// 429 + Retry-After), and drains gracefully on SIGTERM/SIGINT.
//
// API (JSON unless noted):
//
//	POST /v1/simulations              submit {policy, cores, mix|apps, ...}
//	POST /v1/simulations/{id}:suspend checkpoint a job for later resumption
//	GET  /v1/simulations/{id}         job status and result
//	GET  /v1/simulations/{id}/events  JSONL progress stream
//	GET  /v1/simulations/{id}/telemetry  NDJSON range query over the columnar
//	                                  time series (from/to/res/tags); needs
//	                                  -telemetry-dir, survives restarts
//	GET  /healthz                     liveness + version
//	GET  /readyz                      admission state (503 while draining)
//	GET  /metrics                     Prometheus text exposition
//
// Example:
//
//	delta-served -addr :8080 -workers 4 -queue-depth 64 -job-timeout 2m
//	curl -s localhost:8080/v1/simulations -d '{"mix":"w2","budget_instructions":20000}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"delta/internal/server"
	"delta/internal/telemetry"
	"delta/internal/version"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker pool size")
	queueDepth := flag.Int("queue-depth", 64, "max accepted jobs waiting for a worker (full = 429)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job deadline (0 = none); expired jobs report partial results")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain accepted jobs on shutdown before canceling them")
	jsonl := flag.String("jsonl", "", "append every simulation's telemetry to this JSONL file (flushed on shutdown)")
	checkpointDir := flag.String("checkpoint-dir", "", "persist suspended jobs' simulation snapshots here; enables :suspend, resume-on-resubmit, and checkpoint-instead-of-discard drains")
	resultDir := flag.String("result-dir", "", "persist completed results to a content-addressed store here; resubmissions dedupe against it across restarts")
	snapshotEvery := flag.Int("snapshot-every", 0, "auto-checkpoint each running simulation in memory every N quantum boundaries (0 = off)")
	telemetryDir := flag.String("telemetry-dir", "", "stream each job's samples into columnar segments under this directory (one subdirectory per job) and serve range queries at /v1/simulations/{id}/telemetry")
	telemetryRetain := flag.Int64("telemetry-retain-bytes", 0, "per-job cap on columnar segment bytes; oldest segments deleted first (0 = unlimited)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("delta-served", version.String())
		return
	}
	log.Printf("delta-served %s starting on %s (workers=%d queue-depth=%d job-timeout=%s)",
		version.String(), *addr, *workers, *queueDepth, *jobTimeout)

	var sink telemetry.Recorder
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			log.Fatalf("delta-served: %v", err)
		}
		defer f.Close()
		sink = telemetry.NewJSONL(f)
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobTimeout:    *jobTimeout,
		CheckpointDir: *checkpointDir,
		ResultDir:     *resultDir,
		SnapshotEvery: *snapshotEvery,
		Version:       version.String(),
		Sink:          sink,
		Logf:          log.Printf,

		TelemetryDir:         *telemetryDir,
		TelemetryRetainBytes: *telemetryRetain,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("delta-served: %v", err)
	case sig := <-sigCh:
		log.Printf("delta-served: %v received, draining accepted jobs", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("delta-served: drain incomplete: %v", err)
	}
	// Close listeners only after the jobs drained, so pollers can collect
	// results until the end.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("delta-served: http shutdown: %v", err)
	}
	log.Printf("delta-served: exit")
}
