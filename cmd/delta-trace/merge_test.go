package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"delta/internal/telemetry"
	"delta/internal/telemetry/columnar"
)

// genDir writes a small segment directory for one node of a job.
func genDir(t *testing.T, dir, job, tag string, quanta int, offset uint64) {
	t.Helper()
	w, err := columnar.NewWriter(columnar.Config{Dir: dir, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < quanta; q++ {
		w.Sample(telemetry.Sample{
			Cycle: uint64(q+1)*1000 + offset, Tile: 0, Tag: tag, IPC: 1.5,
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var b strings.Builder
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("runMerge: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestMergeSubcommandNDJSON(t *testing.T) {
	root := t.TempDir()
	d0 := filepath.Join(root, "node-0")
	d1 := filepath.Join(root, "node-1")
	genDir(t, d0, "job-x", "node-0", 5, 0)
	genDir(t, d1, "job-x", "node-1", 5, 100)

	out := captureStdout(t, func() error { return runMerge([]string{d1, d0}) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines, want 10:\n%s", len(lines), out)
	}
	var prev columnar.Row
	for i, ln := range lines {
		var row columnar.Row
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, ln)
		}
		if i > 0 && (row.Tag < prev.Tag || (row.Tag == prev.Tag && row.Cycle < prev.Cycle)) {
			t.Fatalf("merge order violated at line %d: %+v after %+v", i, row, prev)
		}
		prev = row
	}
	// All node-0 rows sort before node-1 (same job, tag order).
	if !strings.Contains(lines[0], `"tag":"node-0"`) || !strings.Contains(lines[9], `"tag":"node-1"`) {
		t.Fatalf("tags not grouped:\nfirst %s\nlast  %s", lines[0], lines[9])
	}
}

func TestMergeSubcommandCSVAndFilters(t *testing.T) {
	root := t.TempDir()
	d0 := filepath.Join(root, "a")
	d1 := filepath.Join(root, "b")
	genDir(t, d0, "job-x", "node-0", 8, 0)
	genDir(t, d1, "job-x", "node-1", 8, 0)

	out := captureStdout(t, func() error {
		return runMerge([]string{"-csv", "-from", "3000", "-to", "6000", "-tags", "node-1", d0, d1})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "job,tag,res,cycle,tile,ipc,mpki,fill,hit_rate,noc_util,mcu_queue" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 1+4 { // cycles 3000..6000 of node-1
		t.Fatalf("%d rows, want 4:\n%s", len(lines)-1, out)
	}
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "node-1") {
			t.Fatalf("tag filter leaked: %s", ln)
		}
	}
}

func TestMergeSubcommandErrors(t *testing.T) {
	if err := runMerge([]string{}); err == nil {
		t.Fatal("no dirs must error")
	}
	if err := runMerge([]string{"-res", "7", t.TempDir()}); err == nil {
		t.Fatal("bad res must error")
	}
	if err := runMerge([]string{filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing dir must error")
	}
}
