// Command delta-trace runs one mix under every policy and prints a compact
// comparison plus DELTA's reconfiguration event trace — the tool used while
// developing and debugging the allocation dynamics (who expands where, who
// retreats, how much churn each decision causes).
//
//	delta-trace -mix w2
//	delta-trace -mix w13 -events 40
package main

import (
	"flag"
	"fmt"

	"delta/internal/chip"
	"delta/internal/experiments"
	"delta/internal/metrics"
	"delta/internal/workloads"
)

func main() {
	mixName := flag.String("mix", "w2", "Table IV mix")
	cores := flag.Int("cores", 16, "core count")
	events := flag.Int("events", 20, "max reconfiguration events to print")
	util := flag.Bool("util", false, "print the per-bank utilization map")
	flag.Parse()

	sc := experiments.DefaultScale()
	if *cores > 16 {
		sc = sc.For64()
	}
	mix := workloads.MixByName(*mixName)

	t := metrics.NewTable(fmt.Sprintf("%s on %d cores", *mixName, *cores),
		"policy", "geomean IPC", "vs s-nuca", "ctrl msg %", "inval lines")
	base := 0.0
	var deltaRun experiments.MixRun
	for _, pol := range experiments.PolicyNames {
		run := sc.RunMix(pol, mix, *cores)
		geo := metrics.GeoMean(run.IPCs())
		if pol == "snuca" {
			base = geo
		}
		if pol == "delta" {
			deltaRun = run
		}
		t.AddRow(pol,
			fmt.Sprintf("%.4f", geo),
			fmt.Sprintf("%+.1f%%", (geo/base-1)*100),
			fmt.Sprintf("%.3f", run.Net.ControlFraction()*100),
			fmt.Sprint(run.Chip.InvalLines))
	}
	fmt.Println(t.String())

	d := deltaRun.Delta
	fmt.Printf("DELTA: %+v\n\n", d.Stats)
	slots := mix.Slots(*cores)
	fmt.Println("final allocations:")
	for i := 0; i < *cores; i++ {
		if w := d.TotalWays(i); w != 16 {
			fmt.Printf("  core %2d (%-10s) %3d ways\n", i, slots[i].Name, w)
		}
	}
	if *util {
		c := chip.New(sc.ChipConfig(*cores), sc.NewPolicy("delta"))
		for i, g := range mix.Generators(*cores, sc.Seed) {
			c.SetWorkload(i, g, true)
		}
		c.Run(sc.Warmup, sc.Budget)
		fmt.Println(c.UtilizationString())
		tr := c.Traffic()
		fmt.Printf("traffic: %d LLC accesses, %d memory fetches, %.1f%% local hits, avg MCU queue %.1f cy\n\n",
			tr.LLCAccesses, tr.MemFetches,
			100*float64(tr.LocalHits)/float64(tr.LocalHits+tr.RemoteHits), tr.AvgQueueDelay)
	}
	fmt.Printf("\nfirst %d reconfiguration events:\n", *events)
	for i, ev := range d.Events() {
		if i >= *events {
			break
		}
		fmt.Printf("  @%-9d %-13s core %2d (%-10s) bank %2d ways %d\n",
			ev.Cycle, ev.Kind, ev.Core, slots[ev.Core].Name, ev.Bank, ev.Ways)
	}
}
