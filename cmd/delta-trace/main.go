// Command delta-trace runs one mix under every policy and prints a compact
// comparison plus DELTA's reconfiguration event trace — the tool used while
// developing and debugging the allocation dynamics (who expands where, who
// retreats, how much churn each decision causes).
//
//	delta-trace -mix w2
//	delta-trace -mix w13 -events 40
//	delta-trace -mix w2 -jsonl | jq 'select(.kind=="cede")'
//	delta-trace -mix w2 -timeline
//
// The merge subcommand k-way merges the columnar segment directories of
// several nodes (each a delta-served -telemetry-dir job directory) into one
// stream ordered by (job, tag, quantum), as NDJSON or CSV:
//
//	delta-trace merge node-a/jobdir node-b/jobdir
//	delta-trace merge -res 10 -from 1000000 -csv node-*/jobdir
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"delta/internal/chip"
	"delta/internal/experiments"
	"delta/internal/metrics"
	"delta/internal/telemetry"
	"delta/internal/telemetry/columnar"
	"delta/internal/version"
	"delta/internal/workloads"
)

func main() {
	// Subcommands dispatch before flag parsing ("delta-trace merge <dirs>").
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		if err := runMerge(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "delta-trace merge:", err)
			os.Exit(1)
		}
		return
	}
	mixName := flag.String("mix", "w2", "Table IV mix")
	cores := flag.Int("cores", 16, "core count")
	events := flag.Int("events", 20, "max reconfiguration events to print")
	util := flag.Bool("util", false, "print the per-bank utilization map")
	jsonl := flag.Bool("jsonl", false, "stream the DELTA run's telemetry as JSONL on stdout (suppresses tables)")
	timeline := flag.Bool("timeline", false, "print the DELTA run's per-quantum sampled series (suppresses tables)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("delta-trace", version.String())
		return
	}

	sc := experiments.DefaultScale()
	if *cores > 16 {
		sc = sc.For64()
	}
	mix := workloads.MixByName(*mixName)

	if *jsonl {
		rec := telemetry.NewJSONL(os.Stdout)
		sc.Recorder = rec
		sc.RunMix("delta", mix, *cores)
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "delta-trace:", err)
			os.Exit(1)
		}
		return
	}
	if *timeline {
		rec := telemetry.NewMemory(0)
		sc.Recorder = rec
		sc.RunMix("delta", mix, *cores)
		printTimeline(rec, *cores)
		return
	}

	t := metrics.NewTable(fmt.Sprintf("%s on %d cores", *mixName, *cores),
		"policy", "geomean IPC", "vs s-nuca", "ctrl msg %", "inval lines")
	base := 0.0
	var deltaRun experiments.MixRun
	for _, pol := range experiments.PaperPolicies {
		run := sc.RunMix(pol, mix, *cores)
		geo := metrics.GeoMean(run.IPCs())
		if pol == "snuca" {
			base = geo
		}
		if pol == "delta" {
			deltaRun = run
		}
		t.AddRow(pol,
			fmt.Sprintf("%.4f", geo),
			fmt.Sprintf("%+.1f%%", (geo/base-1)*100),
			fmt.Sprintf("%.3f", run.Net.ControlFraction()*100),
			fmt.Sprint(run.Chip.InvalLines))
	}
	fmt.Println(t.String())

	d := deltaRun.Delta
	fmt.Printf("DELTA: %+v\n\n", d.Stats)
	slots := mix.Slots(*cores)
	fmt.Println("final allocations:")
	for i := 0; i < *cores; i++ {
		if w := d.TotalWays(i); w != 16 {
			fmt.Printf("  core %2d (%-10s) %3d ways\n", i, slots[i].Name, w)
		}
	}
	if *util {
		c := chip.New(sc.ChipConfig(*cores), sc.NewPolicy("delta"))
		for i, g := range mix.Generators(*cores, sc.Seed) {
			c.SetWorkload(i, g, true)
		}
		c.Run(sc.Warmup, sc.Budget)
		fmt.Println(c.UtilizationString())
		tr := c.Traffic()
		fmt.Printf("traffic: %d LLC accesses, %d memory fetches, %.1f%% local hits, avg MCU queue %.1f cy\n\n",
			tr.LLCAccesses, tr.MemFetches,
			100*float64(tr.LocalHits)/float64(tr.LocalHits+tr.RemoteHits), tr.AvgQueueDelay)
	}
	fmt.Printf("\nfirst %d reconfiguration events:\n", *events)
	for i, ev := range d.Events() {
		if i >= *events {
			break
		}
		fmt.Printf("  @%-9d %-13s core %2d (%-10s) bank %2d ways %d\n",
			ev.Cycle, ev.Kind, ev.Core, slots[ev.Core].Name, ev.Bank, ev.Ways)
	}
}

// runMerge implements the merge subcommand: k-way merge the given segment
// directories into one (job, tag, cycle, tile)-ordered stream on stdout.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	from := fs.Uint64("from", 0, "first cycle, inclusive")
	to := fs.Uint64("to", 0, "last cycle, inclusive (0 = unbounded)")
	res := fs.Int("res", 1, "resolution factor: 1 (raw), 10 or 100; tiers without data fall back to finer ones")
	tags := fs.String("tags", "", "comma-separated emitter tags to keep (default all)")
	asCSV := fs.Bool("csv", false, "emit CSV instead of NDJSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: delta-trace merge [flags] <segment-dir> [<segment-dir>...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		fs.Usage()
		return fmt.Errorf("no segment directories given")
	}
	if _, err := columnar.TierOf(*res); err != nil {
		return err
	}
	q := columnar.Query{From: *from, To: *to, Res: *res}
	if *tags != "" {
		q.Tags = strings.Split(*tags, ",")
	}

	var emit func(columnar.Row) bool
	var finish func() error
	if *asCSV {
		cw := csv.NewWriter(os.Stdout)
		if err := cw.Write([]string{"job", "tag", "res", "cycle", "tile",
			"ipc", "mpki", "fill", "hit_rate", "noc_util", "mcu_queue"}); err != nil {
			return err
		}
		var werr error
		emit = func(r columnar.Row) bool {
			werr = cw.Write([]string{
				r.Job, r.Tag, strconv.Itoa(r.Res),
				strconv.FormatUint(r.Cycle, 10), strconv.Itoa(r.Tile),
				fmtFloat(r.IPC), fmtFloat(r.MPKI), fmtFloat(r.BankFill),
				fmtFloat(r.BankHitRate), fmtFloat(r.NoCLinkUtil), fmtFloat(r.MCUQueue),
			})
			return werr == nil
		}
		finish = func() error {
			cw.Flush()
			if werr != nil {
				return werr
			}
			return cw.Error()
		}
	} else {
		enc := json.NewEncoder(os.Stdout)
		var werr error
		emit = func(r columnar.Row) bool {
			werr = enc.Encode(r)
			return werr == nil
		}
		finish = func() error { return werr }
	}
	if err := columnar.Merge(dirs, q, emit); err != nil {
		return err
	}
	return finish()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// printTimeline renders the sampled series: per sample window, the mean of
// the per-tile points plus the chip-wide NoC/MCU point, then an event-count
// summary.
func printTimeline(rec *telemetry.Memory, cores int) {
	type window struct {
		ipc, mpki, fill, hit float64
		tiles                int
		nocUtil, mcuQueue    float64
	}
	windows := map[uint64]*window{}
	var order []uint64
	for _, s := range rec.Samples() {
		w := windows[s.Cycle]
		if w == nil {
			w = &window{}
			windows[s.Cycle] = w
			order = append(order, s.Cycle)
		}
		if s.Tile == telemetry.ChipWide {
			w.nocUtil = s.NoCLinkUtil
			w.mcuQueue = s.MCUQueue
		} else {
			w.ipc += s.IPC
			w.mpki += s.MPKI
			w.fill += s.BankFill
			w.hit += s.BankHitRate
			w.tiles++
		}
	}
	t := metrics.NewTable(fmt.Sprintf("sampled series (%d cores)", cores),
		"cycle", "mean IPC", "mean MPKI", "mean fill", "mean hit%", "NoC util", "MCU queue")
	for _, cy := range order {
		w := windows[cy]
		n := float64(w.tiles)
		if n == 0 {
			n = 1
		}
		t.AddRow(fmt.Sprint(cy),
			fmt.Sprintf("%.3f", w.ipc/n),
			fmt.Sprintf("%.1f", w.mpki/n),
			fmt.Sprintf("%.3f", w.fill/n),
			fmt.Sprintf("%.1f", 100*w.hit/n),
			fmt.Sprintf("%.4f", w.nocUtil),
			fmt.Sprintf("%.2f", w.mcuQueue))
	}
	fmt.Println(t.String())
	fmt.Println("events:")
	for _, k := range []telemetry.EventKind{
		telemetry.KindChallenge, telemetry.KindChallengeResult,
		telemetry.KindCede, telemetry.KindIdleGrant, telemetry.KindIntraShift,
		telemetry.KindRetreat, telemetry.KindRemap, telemetry.KindAlloc,
	} {
		if n := len(rec.EventsOfKind(k)); n > 0 {
			fmt.Printf("  %-16s %d\n", k, n)
		}
	}
	if d := rec.DroppedEvents(); d > 0 {
		fmt.Printf("  (%d events dropped by the ring buffer)\n", d)
	}
}
