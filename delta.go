// Package delta is the public API of the DELTA reproduction: a simulator of
// tile-based chip multiprocessors with distributed, locality-aware last-level
// cache partitioning, after Holtryd et al., "DELTA: Distributed
// Locality-Aware Cache Partitioning for Tile-based Chip Multiprocessors"
// (IPPS 2020).
//
// The package wraps the internal simulator behind a small facade:
//
//	sim := delta.NewSimulator(delta.Config{Cores: 16, Policy: delta.PolicyDelta})
//	sim.SetWorkload(0, delta.Workload{App: "omnetpp"})
//	...
//	res := sim.Run()
//	fmt.Println(res.GeoMeanIPC())
//
// Four partitioning policies are available: the unpartitioned shared S-NUCA
// baseline, static private partitioning, DELTA's distributed challenge-based
// scheme, and the zero-overhead ideal centralized scheme (UCP Lookahead plus
// locality-aware placement). Workloads come from the built-in SPEC CPU2006
// models, the Table IV mixes, the SPLASH2 sharing profiles, or custom access
// generators.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results; the examples/ directory contains runnable programs.
package delta

import (
	"fmt"

	"delta/internal/central"
	"delta/internal/chip"
	"delta/internal/core"
	"delta/internal/metrics"
	"delta/internal/trace"
	"delta/internal/workloads"
)

// PolicyKind selects the cache-partitioning scheme.
type PolicyKind string

// Available policies.
const (
	PolicySnuca   PolicyKind = "snuca"
	PolicyPrivate PolicyKind = "private"
	PolicyDelta   PolicyKind = "delta"
	PolicyIdeal   PolicyKind = "ideal"
)

// Config describes a simulation.
type Config struct {
	// Cores is the tile count; must be a perfect square (16 and 64 in the
	// paper).
	Cores int
	// Policy selects the partitioning scheme (default PolicyDelta).
	Policy PolicyKind
	// TimeCompression divides the paper's reconfiguration intervals and is
	// matched by correspondingly smaller instruction budgets (DESIGN.md §3).
	// 0 uses the experiment default (50).
	TimeCompression uint64
	// WarmupInstructions and BudgetInstructions set the per-core
	// fast-forward and measured windows; 0 uses the experiment defaults.
	WarmupInstructions, BudgetInstructions uint64
	// Multithreaded enables R-NUCA-style shared-page handling.
	Multithreaded bool
	// Seed drives workload randomness.
	Seed uint64
	// Recorder receives telemetry (events, per-quantum samples, end-of-run
	// counters and gauges). nil disables telemetry entirely; the policies
	// attach to it automatically.
	Recorder Recorder
	// SampleEvery sets how many quanta elapse between telemetry samples
	// (0 uses the chip default of 16). Only meaningful with a Recorder.
	SampleEvery int
	// Check enables the runtime invariant harness: simulator-wide
	// consistency checks at every quantum boundary and after every
	// reconfiguration, panicking on the first violation. See DESIGN.md
	// "Validation & invariants".
	Check bool

	// DeltaParams overrides DELTA's knobs when Policy == PolicyDelta;
	// nil uses Table II defaults scaled by TimeCompression.
	DeltaParams *core.Params
	// IdealConfig overrides the centralized policy's knobs when Policy ==
	// PolicyIdeal; nil uses defaults scaled by TimeCompression.
	IdealConfig *central.IdealConfig
}

// Workload assigns an application to a core. Exactly one of App or Generator
// must be set.
type Workload struct {
	// App names a built-in SPEC CPU2006 model (full name or short code).
	App string
	// Generator supplies a custom access stream.
	Generator trace.Generator
	// SharedAddressSpace marks multithreaded workloads whose generators
	// emit into one global address space.
	SharedAddressSpace bool
}

// Simulator is a configured chip ready to run.
type Simulator struct {
	cfg    Config
	chip   *chip.Chip
	delta  *core.Delta
	ideal  *central.Ideal
	loaded int
	ran    bool
}

// NewSimulator builds a simulator. It panics on invalid configuration, like
// the rest of the library: configuration errors are programming errors.
func NewSimulator(cfg Config) *Simulator {
	if cfg.Cores == 0 {
		cfg.Cores = 16
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyDelta
	}
	if cfg.TimeCompression == 0 {
		cfg.TimeCompression = 50
	}
	if cfg.WarmupInstructions == 0 {
		cfg.WarmupInstructions = 400_000
	}
	if cfg.BudgetInstructions == 0 {
		cfg.BudgetInstructions = 250_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ccfg := chip.DefaultConfig(cfg.Cores)
	ccfg.Multithreaded = cfg.Multithreaded
	ccfg.Seed = cfg.Seed
	ccfg.UmonSampleEvery = 4
	ccfg.Recorder = cfg.Recorder
	ccfg.SampleEvery = cfg.SampleEvery
	ccfg.Check = cfg.Check
	s := &Simulator{cfg: cfg}
	var pol chip.Policy
	switch cfg.Policy {
	case PolicySnuca:
		pol = chip.NewSnuca()
	case PolicyPrivate:
		pol = chip.NewPrivate()
	case PolicyDelta:
		params := core.DefaultParams().Scale(cfg.TimeCompression)
		if cfg.DeltaParams != nil {
			params = *cfg.DeltaParams
		}
		s.delta = core.New(params)
		pol = s.delta
	case PolicyIdeal:
		icfg := central.DefaultIdealConfig()
		icfg.Interval /= cfg.TimeCompression
		if icfg.Interval == 0 {
			icfg.Interval = 1
		}
		if cfg.IdealConfig != nil {
			icfg = *cfg.IdealConfig
		}
		s.ideal = central.NewIdeal(icfg)
		pol = s.ideal
	default:
		panic(fmt.Sprintf("delta: unknown policy %q", cfg.Policy))
	}
	s.chip = chip.New(ccfg, pol)
	return s
}

// SetWorkload assigns a workload to a core.
func (s *Simulator) SetWorkload(coreID int, w Workload) {
	if s.ran {
		panic("delta: SetWorkload after Run")
	}
	gen := w.Generator
	if gen == nil {
		if w.App == "" {
			panic("delta: workload needs App or Generator")
		}
		app, err := LookupApp(w.App)
		if err != nil {
			panic(err)
		}
		gen = app.Spec.Build(s.cfg.Seed*1000003 + uint64(coreID)*7919 + 17)
	}
	s.chip.SetWorkload(coreID, gen, !w.SharedAddressSpace)
	s.loaded++
}

// LoadMix assigns one of the paper's Table IV mixes (w1..w15) to all cores.
func (s *Simulator) LoadMix(name string) {
	m := workloads.MixByName(name)
	for i, g := range m.Generators(s.cfg.Cores, s.cfg.Seed) {
		s.chip.SetWorkload(i, g, true)
		s.loaded++
	}
}

// SetProcessGroup marks cores as threads of one process (multithreaded mode;
// DELTA then refuses challenges between them).
func (s *Simulator) SetProcessGroup(cores []int, pid int) {
	if s.delta == nil {
		return
	}
	for _, c := range cores {
		s.delta.SetProcess(c, pid)
	}
}

// CoreResult re-exports the chip's per-core measurement.
type CoreResult = chip.CoreResult

// Result summarizes a run.
type Result struct {
	Policy PolicyKind
	Cores  []CoreResult

	ControlMessageFraction float64
	InvalidatedLines       uint64
}

// Run executes the simulation (warmup then measured window) and returns the
// results. Run can only be called once.
func (s *Simulator) Run() Result {
	if s.ran {
		panic("delta: Run called twice")
	}
	if s.loaded == 0 {
		panic("delta: no workloads assigned")
	}
	s.ran = true
	s.chip.Run(s.cfg.WarmupInstructions, s.cfg.BudgetInstructions)
	return Result{
		Policy:                 s.cfg.Policy,
		Cores:                  s.chip.Results(),
		ControlMessageFraction: s.chip.Net.Stats.ControlFraction(),
		InvalidatedLines:       s.chip.Stats.InvalLines,
	}
}

// Delta exposes the DELTA policy instance (nil for other policies) for
// allocation introspection.
func (s *Simulator) Delta() *core.Delta { return s.delta }

// Ideal exposes the centralized policy instance (nil otherwise).
func (s *Simulator) Ideal() *central.Ideal { return s.ideal }

// GeoMeanIPC is the paper's per-workload performance metric.
func (r Result) GeoMeanIPC() float64 {
	ipcs := make([]float64, len(r.Cores))
	for i, c := range r.Cores {
		ipcs[i] = c.IPC
	}
	return metrics.GeoMean(ipcs)
}

// IPCs returns the per-core IPC vector.
func (r Result) IPCs() []float64 {
	out := make([]float64, len(r.Cores))
	for i, c := range r.Cores {
		out[i] = c.IPC
	}
	return out
}

// App re-exports the workload model type.
type App = workloads.App

// LookupApp resolves a SPEC CPU2006 model by name or short code.
func LookupApp(name string) (App, error) {
	for _, a := range workloads.Apps() {
		if a.Name == name || a.Short == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("delta: unknown application %q", name)
}

// Apps lists the built-in SPEC CPU2006 models.
func Apps() []App { return workloads.Apps() }

// MixNames lists the built-in Table IV mixes.
func MixNames() []string {
	out := make([]string, 0, 15)
	for _, m := range workloads.Mixes() {
		out = append(out, m.Name)
	}
	return out
}
