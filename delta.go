// Package delta is the public API of the DELTA reproduction: a simulator of
// tile-based chip multiprocessors with distributed, locality-aware last-level
// cache partitioning, after Holtryd et al., "DELTA: Distributed
// Locality-Aware Cache Partitioning for Tile-based Chip Multiprocessors"
// (IPPS 2020).
//
// The package wraps the internal simulator behind a small facade:
//
//	sim := delta.NewSimulator(delta.Config{Cores: 16, Policy: delta.PolicyDelta})
//	sim.SetWorkload(0, delta.Workload{App: "omnetpp"})
//	...
//	res := sim.Run()
//	fmt.Println(res.GeoMeanIPC())
//
// Policies resolve by name through a registry (see Policies and
// RegisterPolicy). Seven are built in: the unpartitioned shared S-NUCA
// baseline, static private partitioning, DELTA's distributed challenge-based
// scheme, the zero-overhead ideal centralized scheme (UCP Lookahead plus
// locality-aware placement), LFOC-style fairness clustering, CARMA-style
// auction-based allocation, and per-bank bandwidth regulation layered on any
// base policy. Per-policy parameters attach uniformly with WithPolicyParams.
// Workloads come from the built-in SPEC CPU2006 models, the Table IV mixes,
// the SPLASH2 sharing profiles, or custom access generators.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results; the examples/ directory contains runnable programs.
package delta

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"delta/internal/bankbw"
	"delta/internal/carma"
	"delta/internal/central"
	"delta/internal/chip"
	"delta/internal/core"
	"delta/internal/lfoc"
	"delta/internal/metrics"
	"delta/internal/policies"
	"delta/internal/scenario"
	"delta/internal/snapshot"
	"delta/internal/trace"
	"delta/internal/workloads"
)

// PolicyKind selects the cache-partitioning scheme.
type PolicyKind string

// Built-in policies; Policies() lists everything currently registered.
const (
	PolicySnuca   PolicyKind = "snuca"
	PolicyPrivate PolicyKind = "private"
	PolicyDelta   PolicyKind = "delta"
	PolicyIdeal   PolicyKind = "ideal"
	PolicyLFOC    PolicyKind = "lfoc"
	PolicyCARMA   PolicyKind = "carma"
	PolicyBankBW  PolicyKind = "bankbw"
)

// Config describes a simulation.
type Config struct {
	// Cores is the tile count; must be a perfect square (16 and 64 in the
	// paper).
	Cores int
	// Policy selects the partitioning scheme (default PolicyDelta).
	Policy PolicyKind
	// TimeCompression divides the paper's reconfiguration intervals and is
	// matched by correspondingly smaller instruction budgets (DESIGN.md §3).
	// 0 uses the experiment default (50).
	TimeCompression uint64
	// WarmupInstructions and BudgetInstructions set the per-core
	// fast-forward and measured windows; 0 uses the experiment defaults.
	WarmupInstructions, BudgetInstructions uint64
	// FastForward replaces the simulated warmup with analytical seeding:
	// before Run, every core whose generator exposes a trace locality model
	// gets its UMON counters and cache contents derived from closed-form
	// stack-distance curves, and measurement starts immediately. Cores
	// without a model (custom generators, shared address spaces) warm the
	// simulated way. Results differ from a simulated warmup only within the
	// bound documented in DESIGN.md §10.
	FastForward bool
	// Multithreaded enables R-NUCA-style shared-page handling.
	Multithreaded bool
	// Seed drives workload randomness.
	Seed uint64
	// Recorder receives telemetry (events, per-quantum samples, end-of-run
	// counters and gauges). nil disables telemetry entirely; the policies
	// attach to it automatically.
	Recorder Recorder
	// SampleEvery sets how many quanta elapse between telemetry samples
	// (0 uses the chip default of 16). Only meaningful with a Recorder.
	SampleEvery int
	// Check enables the runtime invariant harness: simulator-wide
	// consistency checks at every quantum boundary and after every
	// reconfiguration, panicking on the first violation. See DESIGN.md
	// "Validation & invariants".
	Check bool
	// SnapshotEvery, when positive, auto-checkpoints the simulator every
	// SnapshotEvery quantum boundaries during Run/RunCtx; the latest
	// checkpoint is available through LastSnapshot. Like the other
	// observability knobs it never changes results and is excluded from
	// CanonicalJSON.
	SnapshotEvery int

	// Scenario scripts dynamic events — workload arrivals, departures, core
	// migrations, load spikes and phase storms — applied deterministically
	// at quantum boundaries during Run. A scenario changes results, so it is
	// part of CanonicalJSON (and therefore the service's content address);
	// nil (the default) runs the static experiment and leaves existing
	// configuration hashes unchanged. See the Scenario type and DESIGN.md
	// §12 for the DSL.
	Scenario *Scenario
	// PolicyParams carries per-policy parameter overrides, keyed by policy
	// name, as JSON unmarshaled onto the policy's scale-resolved defaults.
	// Set entries with WithPolicyParams, which marshals deterministically
	// (the raw bytes are part of CanonicalJSON, so semantically equal but
	// differently formatted JSON yields different content addresses). Only
	// the entry matching Policy affects the run, but every entry must name
	// a registered policy and hold valid JSON.
	PolicyParams map[string]json.RawMessage
	// DeltaParams overrides DELTA's knobs when Policy == PolicyDelta;
	// nil uses Table II defaults scaled by TimeCompression.
	//
	// Deprecated: Use WithPolicyParams(PolicyDelta, params). DeltaParams is
	// consulted only when PolicyParams has no "delta" entry.
	DeltaParams *core.Params
	// IdealConfig overrides the centralized policy's knobs when Policy ==
	// PolicyIdeal; nil uses defaults scaled by TimeCompression.
	//
	// Deprecated: Use WithPolicyParams(PolicyIdeal, cfg). IdealConfig is
	// consulted only when PolicyParams has no "ideal" entry.
	IdealConfig *central.IdealConfig
}

// Workload assigns an application to a core. Exactly one of App or Generator
// must be set.
type Workload struct {
	// App names a built-in SPEC CPU2006 model (full name or short code).
	App string
	// Generator supplies a custom access stream.
	Generator trace.Generator
	// SharedAddressSpace marks multithreaded workloads whose generators
	// emit into one global address space.
	SharedAddressSpace bool
}

// Validate reports whether the workload is well-formed: exactly one of App
// or Generator set, and App (when set) naming a built-in model.
func (w Workload) Validate() error {
	switch {
	case w.App == "" && w.Generator == nil:
		return errors.New("delta: workload needs App or Generator")
	case w.App != "" && w.Generator != nil:
		return errors.New("delta: workload has both App and Generator; set exactly one")
	case w.App != "":
		if _, err := LookupApp(w.App); err != nil {
			return err
		}
	}
	return nil
}

// Simulator is a configured chip ready to run.
type Simulator struct {
	cfg    Config
	chip   *chip.Chip
	delta  *core.Delta
	ideal  *central.Ideal
	lfoc   *lfoc.Policy
	carma  *carma.Policy
	bankbw *bankbw.Policy
	loaded int
	ran    bool

	// Workload bookkeeping for checkpoint/restore: the mix name (applied
	// first on restore) and per-core named assignments layered on top.
	// Cores loaded with custom generators record hasCustom and make
	// Snapshot fail.
	mixName   string
	appByCore map[int]snapshot.AppAssignment
	hasCustom bool

	mu       sync.Mutex
	lastSnap *Snapshot
}

// Canonical returns the configuration with every default resolved, exactly
// as NewSimulator would run it. Two configurations with equal Canonical
// forms produce bit-identical simulations.
func (c Config) Canonical() Config {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.Policy == "" {
		c.Policy = PolicyDelta
	}
	if c.TimeCompression == 0 {
		c.TimeCompression = 50
	}
	if c.WarmupInstructions == 0 {
		c.WarmupInstructions = 400_000
	}
	if c.BudgetInstructions == 0 {
		c.BudgetInstructions = 250_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CanonicalJSON serializes the result-affecting configuration fields (with
// defaults resolved) into deterministic bytes, suitable as a
// content-addressed cache key: two configurations with equal CanonicalJSON
// produce bit-identical runs. Observability knobs (Recorder, SampleEvery,
// Check) are excluded because they never change results.
func (c Config) CanonicalJSON() ([]byte, error) {
	cc := c.Canonical()
	return json.Marshal(struct {
		Cores           int
		Policy          PolicyKind
		TimeCompression uint64
		Warmup          uint64
		Budget          uint64
		// FastForward changes results, so it must be part of the cache key;
		// omitempty keeps keys of pre-existing (simulated-warmup)
		// configurations byte-identical to earlier releases.
		FastForward   bool `json:",omitempty"`
		Multithreaded bool
		Seed          uint64
		// Scenario changes results; omitempty keeps static configurations'
		// keys byte-identical to earlier releases.
		Scenario    *Scenario            `json:",omitempty"`
		DeltaParams *core.Params         `json:",omitempty"`
		IdealConfig *central.IdealConfig `json:",omitempty"`
		// PolicyParams changes results; json.Marshal sorts the map keys, so
		// equal maps serialize identically, and omitempty keeps param-free
		// configurations' keys byte-identical to earlier releases.
		PolicyParams map[string]json.RawMessage `json:",omitempty"`
	}{
		Cores:           cc.Cores,
		Policy:          cc.Policy,
		TimeCompression: cc.TimeCompression,
		Warmup:          cc.WarmupInstructions,
		Budget:          cc.BudgetInstructions,
		FastForward:     cc.FastForward,
		Multithreaded:   cc.Multithreaded,
		Seed:            cc.Seed,
		Scenario:        cc.Scenario,
		DeltaParams:     cc.DeltaParams,
		IdealConfig:     cc.IdealConfig,
		PolicyParams:    cc.PolicyParams,
	})
}

// validate rejects configurations the internal layers would panic on.
func (c Config) validate() error {
	if !policies.Registered(string(c.Policy)) {
		return fmt.Errorf("delta: unknown policy %q (registered: %s)",
			c.Policy, strings.Join(Policies(), " "))
	}
	for _, name := range sortedParamKeys(c.PolicyParams) {
		if !policies.Registered(name) {
			return fmt.Errorf("delta: policy params for unknown policy %q (registered: %s)",
				name, strings.Join(Policies(), " "))
		}
		if !json.Valid(c.PolicyParams[name]) {
			return fmt.Errorf("delta: policy params for %q are not valid JSON", name)
		}
	}
	n := c.Cores
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("delta: core count %d is not a power of two", n)
	}
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		return fmt.Errorf("delta: core count %d is not a square mesh", n)
	}
	return nil
}

// NewSimulator builds a simulator, panicking on invalid configuration.
//
// Deprecated: Use New with functional options (e.g. New(WithCores(16),
// WithPolicy(PolicyDelta))), which returns errors instead of panicking.
func NewSimulator(cfg Config) *Simulator {
	s, err := newSimulator(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewSimulatorE builds a simulator, returning an error (instead of
// panicking) on invalid configuration.
//
// Deprecated: Use New(WithConfig(cfg)) or per-field options.
func NewSimulatorE(cfg Config) (*Simulator, error) {
	return newSimulator(cfg)
}

// newSimulator is the single construction path behind New, NewSimulator,
// NewSimulatorE and Restore.
func newSimulator(cfg Config) (*Simulator, error) {
	cfg = cfg.Canonical()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ccfg := chip.DefaultConfig(cfg.Cores)
	ccfg.Multithreaded = cfg.Multithreaded
	ccfg.Seed = cfg.Seed
	ccfg.UmonSampleEvery = 4
	ccfg.Recorder = cfg.Recorder
	ccfg.SampleEvery = cfg.SampleEvery
	ccfg.Check = cfg.Check
	s := &Simulator{cfg: cfg, appByCore: make(map[int]snapshot.AppAssignment)}
	params, err := cfg.policyParams()
	if err != nil {
		return nil, err
	}
	pol, err := policies.Build(string(cfg.Policy),
		policies.BuildContext{IntervalScale: cfg.TimeCompression, Params: params})
	if err != nil {
		return nil, err
	}
	// Typed accessors see through the bandwidth regulator to its base.
	inner := pol
	if bw, ok := pol.(*bankbw.Policy); ok {
		s.bankbw = bw
		inner = bw.Base()
	}
	switch p := inner.(type) {
	case *core.Delta:
		s.delta = p
	case *central.Ideal:
		s.ideal = p
	case *lfoc.Policy:
		s.lfoc = p
	case *carma.Policy:
		s.carma = p
	}
	s.chip = chip.New(ccfg, pol)
	return s, nil
}

// policyParams resolves the parameter blob for the selected policy: an
// explicit PolicyParams entry wins; otherwise the deprecated typed fields
// marshal to the equivalent full-struct override.
func (c Config) policyParams() (json.RawMessage, error) {
	if raw, ok := c.PolicyParams[string(c.Policy)]; ok {
		return raw, nil
	}
	switch {
	case c.Policy == PolicyDelta && c.DeltaParams != nil:
		raw, err := json.Marshal(c.DeltaParams)
		if err != nil {
			return nil, fmt.Errorf("delta: DeltaParams: %w", err)
		}
		return raw, nil
	case c.Policy == PolicyIdeal && c.IdealConfig != nil:
		raw, err := json.Marshal(c.IdealConfig)
		if err != nil {
			return nil, fmt.Errorf("delta: IdealConfig: %w", err)
		}
		return raw, nil
	}
	return nil, nil
}

// sortedParamKeys returns the map's keys in deterministic order.
func sortedParamKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetWorkload assigns a workload to a core, panicking on invalid input.
func (s *Simulator) SetWorkload(coreID int, w Workload) {
	if err := s.SetWorkloadE(coreID, w); err != nil {
		panic(err.Error())
	}
}

// SetWorkloadE assigns a workload to a core, returning an error (instead of
// panicking) on an out-of-range core, an unknown application, or a call
// after Run.
func (s *Simulator) SetWorkloadE(coreID int, w Workload) error {
	if s.ran {
		return errors.New("delta: SetWorkload after Run")
	}
	if coreID < 0 || coreID >= s.cfg.Cores {
		return fmt.Errorf("delta: core %d out of range [0,%d)", coreID, s.cfg.Cores)
	}
	if err := w.Validate(); err != nil {
		return err
	}
	gen := w.Generator
	if gen == nil {
		app, err := LookupApp(w.App)
		if err != nil {
			return err
		}
		gen = app.Spec.Build(s.cfg.Seed*1000003 + uint64(coreID)*7919 + 17)
		// Record by canonical name so a restore rebuilds the identical
		// generator tree regardless of whether the short code was used.
		s.appByCore[coreID] = snapshot.AppAssignment{Core: coreID, App: app.Name, Shared: w.SharedAddressSpace}
	} else {
		delete(s.appByCore, coreID)
		s.hasCustom = true
	}
	s.chip.SetWorkload(coreID, gen, !w.SharedAddressSpace)
	s.loaded++
	return nil
}

// LoadMix assigns one of the paper's Table IV mixes (w1..w15) to all cores,
// panicking on an unknown mix.
func (s *Simulator) LoadMix(name string) {
	if err := s.LoadMixE(name); err != nil {
		panic(err.Error())
	}
}

// LoadMixE assigns one of the paper's Table IV mixes to all cores, returning
// an error (instead of panicking) on an unknown mix, a chip whose core count
// is not a multiple of 16, or a call after Run.
func (s *Simulator) LoadMixE(name string) error {
	if s.ran {
		return errors.New("delta: LoadMix after Run")
	}
	var mix *workloads.Mix
	for _, m := range workloads.Mixes() {
		if m.Name == name {
			mix = &m
			break
		}
	}
	if mix == nil {
		return fmt.Errorf("delta: unknown mix %q", name)
	}
	if s.cfg.Cores%16 != 0 {
		return fmt.Errorf("delta: %d cores is not a multiple of 16; mixes need 16n cores", s.cfg.Cores)
	}
	for i, g := range mix.Generators(s.cfg.Cores, s.cfg.Seed) {
		s.chip.SetWorkload(i, g, true)
		s.loaded++
	}
	// The mix assigns every core, superseding earlier per-core assignments;
	// restores replay the mix first, then later SetWorkload calls on top.
	s.mixName = name
	s.appByCore = make(map[int]snapshot.AppAssignment)
	s.hasCustom = false
	return nil
}

// SetProcessGroup marks cores as threads of one process (multithreaded mode;
// DELTA then refuses challenges between them).
func (s *Simulator) SetProcessGroup(cores []int, pid int) {
	if s.delta == nil {
		return
	}
	for _, c := range cores {
		s.delta.SetProcess(c, pid)
	}
}

// CoreResult re-exports the chip's per-core measurement.
type CoreResult = chip.CoreResult

// Result summarizes a run.
type Result struct {
	Policy PolicyKind
	Cores  []CoreResult

	ControlMessageFraction float64
	InvalidatedLines       uint64
}

// Run executes the simulation (warmup then measured window) and returns the
// results. Run can only be called once.
func (s *Simulator) Run() Result {
	res, err := s.RunCtx(context.Background())
	if err != nil {
		// Background contexts never cancel, so the only errors are the
		// call-twice / nothing-loaded programming errors.
		panic(err.Error())
	}
	return res
}

// ErrCanceled marks a run stopped by its context before the measured window
// completed. Errors returned by RunCtx wrap it (and the context's cause), and
// the Result alongside holds partial measurements.
var ErrCanceled = errors.New("delta: run canceled")

// RunCtx executes the simulation like Run, checking ctx at every chip
// quantum boundary: a canceled or expired context stops the run within one
// quantum. On cancellation the returned error wraps both ErrCanceled and the
// context's error, and the returned Result carries whatever the chip had
// measured so far (partial: cores that never crossed their budget report
// their progress at the stop point).
func (s *Simulator) RunCtx(ctx context.Context) (Result, error) {
	if s.ran {
		return Result{}, errors.New("delta: Run called twice")
	}
	if s.loaded == 0 {
		return Result{}, errors.New("delta: no workloads assigned")
	}
	s.ran = true
	if s.cfg.Scenario != nil {
		// A fresh run validates the script against the actual initial
		// occupancy; a restored run resumes mid-scenario (the original run
		// already validated, and occupancy has moved with the events).
		if s.chip.Now() == 0 {
			occ := make([]bool, s.cfg.Cores)
			for i := range occ {
				occ[i] = s.chip.HasWorkload(i)
			}
			if err := s.cfg.Scenario.Validate(s.cfg.Cores, occ); err != nil {
				return Result{}, err
			}
		}
		s.chip.SetBoundaryHook(scenario.NewExecutor(s.cfg.Scenario, s.chip, s.buildApp))
	}
	// A restored simulator resumes mid-run; fast-forward only applies to a
	// chip that has not advanced (restored tiles are already warmed anyway).
	if s.cfg.FastForward && s.chip.Now() == 0 {
		s.chip.FastForward(s.cfg.WarmupInstructions)
	}
	if s.cfg.SnapshotEvery > 0 {
		s.chip.SetCheckpoint(s.cfg.SnapshotEvery, func(uint64) { s.storeCheckpoint() })
	}
	err := s.chip.RunCtx(ctx, s.cfg.WarmupInstructions, s.cfg.BudgetInstructions)
	if err != nil && s.cfg.SnapshotEvery > 0 {
		// The chip stopped at an exact quantum boundary; capture it so the
		// last checkpoint resumes from the stop point, not an earlier one.
		s.storeCheckpoint()
	}
	res := Result{
		Policy:                 s.cfg.Policy,
		Cores:                  s.chip.Results(),
		ControlMessageFraction: s.chip.Net.Stats.ControlFraction(),
		InvalidatedLines:       s.chip.Stats.InvalLines,
	}
	if err != nil {
		return res, fmt.Errorf("%w after %d cycles (results are partial): %w", ErrCanceled, s.chip.Now(), err)
	}
	return res, nil
}

// Delta exposes the DELTA policy instance (nil for other policies) for
// allocation introspection.
func (s *Simulator) Delta() *core.Delta { return s.delta }

// Ideal exposes the centralized policy instance (nil otherwise).
func (s *Simulator) Ideal() *central.Ideal { return s.ideal }

// LFOC exposes the clustering policy instance (nil otherwise), including
// when it runs as the bandwidth regulator's base.
func (s *Simulator) LFOC() *lfoc.Policy { return s.lfoc }

// Carma exposes the auction policy instance (nil otherwise), including when
// it runs as the bandwidth regulator's base.
func (s *Simulator) Carma() *carma.Policy { return s.carma }

// BankBW exposes the bandwidth regulator instance (nil otherwise).
func (s *Simulator) BankBW() *bankbw.Policy { return s.bankbw }

// GeoMeanIPC is the paper's per-workload performance metric: the geometric
// mean over cores that measured a positive IPC. Cores that retired no
// instructions in their window (idle tiles, or partial runs stopped before
// warmup) are excluded rather than poisoning the mean with NaN/-Inf; when no
// core measured anything the result is 0.
func (r Result) GeoMeanIPC() float64 {
	ipcs := make([]float64, 0, len(r.Cores))
	for _, c := range r.Cores {
		if c.IPC > 0 {
			ipcs = append(ipcs, c.IPC)
		}
	}
	if len(ipcs) == 0 {
		return 0
	}
	return metrics.GeoMean(ipcs)
}

// IPCs returns the per-core IPC vector.
func (r Result) IPCs() []float64 {
	out := make([]float64, len(r.Cores))
	for i, c := range r.Cores {
		out[i] = c.IPC
	}
	return out
}

// buildApp is the scenario executor's generator factory: an arriving
// application gets the same seed derivation its core would have used for an
// initial assignment, so scripted arrivals are as deterministic as static
// workloads.
func (s *Simulator) buildApp(coreID int, name string) (trace.Generator, error) {
	app, err := LookupApp(name)
	if err != nil {
		return nil, err
	}
	return app.Spec.Build(s.cfg.Seed*1000003 + uint64(coreID)*7919 + 17), nil
}

// Scenario is the dynamic-scenario DSL: a schema-versioned script of workload
// arrivals, departures, core migrations, load spikes and phase storms applied
// at quantum boundaries. Attach one with WithScenario or Config.Scenario.
type Scenario = scenario.Scenario

// ScenarioEvent is one scripted action in a Scenario.
type ScenarioEvent = scenario.Event

// Scenario event kinds.
const (
	ScenarioArrive  = scenario.KindArrive
	ScenarioDepart  = scenario.KindDepart
	ScenarioMigrate = scenario.KindMigrate
	ScenarioSpike   = scenario.KindSpike
	ScenarioStorm   = scenario.KindStorm
)

// ParseScenario decodes and validates a JSON scenario for a chip with cores
// tiles; initial[i] reports whether tile i starts occupied (nil = all do).
func ParseScenario(data []byte, cores int, initial []bool) (*Scenario, error) {
	return scenario.Parse(data, cores, initial)
}

// ChaosScenario deterministically generates a random scenario that is valid
// for a fully loaded chip with cores tiles and fires every event within
// quanta quantum boundaries; the fuzz harness sweeps seeds against the
// invariant checker.
func ChaosScenario(seed uint64, cores int, quanta uint64, events int) *Scenario {
	return scenario.Chaos(seed, cores, quanta, events)
}

// App re-exports the workload model type.
type App = workloads.App

// LookupApp resolves a SPEC CPU2006 model by name or short code.
func LookupApp(name string) (App, error) {
	for _, a := range workloads.Apps() {
		if a.Name == name || a.Short == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("delta: unknown application %q", name)
}

// Apps lists the built-in SPEC CPU2006 models.
func Apps() []App { return workloads.Apps() }

// MixNames lists the built-in Table IV mixes.
func MixNames() []string {
	out := make([]string, 0, 15)
	for _, m := range workloads.Mixes() {
		out = append(out, m.Name)
	}
	return out
}
