package delta

import (
	"bytes"
	"strings"
	"testing"

	"delta/internal/bankbw"
	"delta/internal/carma"
	"delta/internal/core"
	"delta/internal/lfoc"
)

// TestPoliciesLists pins the registry's contents and order: the seven
// built-ins in registration order. External registrations would follow,
// sorted by name.
func TestPoliciesLists(t *testing.T) {
	got := Policies()
	want := []string{"snuca", "private", "delta", "ideal", "lfoc", "carma", "bankbw"}
	if len(got) != len(want) {
		t.Fatalf("Policies() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Policies()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRegisterPolicyDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a built-in name should panic")
		}
	}()
	RegisterPolicy("delta", func(PolicyBuildContext) (Policy, error) { return nil, nil })
}

// TestUnknownPolicyErrorListsRegistry: the structured rejection names every
// registered policy, so a typo in a submission or CLI flag is self-fixing.
func TestUnknownPolicyErrorListsRegistry(t *testing.T) {
	_, err := New(WithCores(16), WithPolicy("bogus"))
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
	for _, name := range Policies() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered policy %q", err, name)
		}
	}
}

// TestPolicyParamsContentAddress: WithPolicyParams joins the canonical
// serialization (the service's content address), and a configuration without
// params serializes byte-identically to one predating the field — existing
// hashes and golden snapshots stay valid.
func TestPolicyParamsContentAddress(t *testing.T) {
	base := Config{Cores: 16, Policy: PolicyLFOC,
		WarmupInstructions: 10_000, BudgetInstructions: 10_000}
	plain, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("PolicyParams")) {
		t.Fatalf("empty PolicyParams leaked into canonical JSON: %s", plain)
	}

	var withParams Config
	WithConfig(base)(&withParams)
	WithPolicyParams(PolicyLFOC, map[string]int{"SharedWays": 4})(&withParams)
	tuned, err := withParams.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, tuned) {
		t.Fatal("policy params did not change the canonical serialization")
	}
	if !bytes.Contains(tuned, []byte("SharedWays")) {
		t.Fatalf("params missing from canonical JSON: %s", tuned)
	}
}

// TestPolicyParamsRoundTrip: params reach the built policies (partial maps
// tweak individual knobs on scale-resolved defaults), for each of the three
// new policies including the composed bankbw base.
func TestPolicyParamsRoundTrip(t *testing.T) {
	sim, err := New(WithCores(16), WithPolicy(PolicyLFOC),
		WithWarmup(5_000), WithBudget(5_000),
		WithPolicyParams(PolicyLFOC, map[string]int{"MaxClusters": 3}))
	if err != nil {
		t.Fatal(err)
	}
	if p := sim.LFOC(); p == nil {
		t.Fatal("lfoc policy not exposed")
	} else if got := p.Config().MaxClusters; got != 3 {
		t.Fatalf("MaxClusters = %d, want 3", got)
	}

	sim, err = New(WithCores(16), WithPolicy(PolicyCARMA),
		WithWarmup(5_000), WithBudget(5_000),
		WithPolicyParams(PolicyCARMA, map[string]int{"MaxBudget": 42}))
	if err != nil {
		t.Fatal(err)
	}
	if p := sim.Carma(); p == nil {
		t.Fatal("carma policy not exposed")
	} else if got := p.Config().MaxBudget; got != 42 {
		t.Fatalf("MaxBudget = %v, want 42", got)
	}

	sim, err = New(WithCores(16), WithPolicy(PolicyBankBW),
		WithWarmup(5_000), WithBudget(5_000),
		WithPolicyParams(PolicyBankBW, map[string]any{
			"Base": "delta", "WindowQuanta": 7}))
	if err != nil {
		t.Fatal(err)
	}
	bw := sim.BankBW()
	if bw == nil {
		t.Fatal("bankbw policy not exposed")
	}
	if got := bw.Config().WindowQuanta; got != 7 {
		t.Fatalf("WindowQuanta = %d, want 7", got)
	}
	if got := bw.Base().Name(); got != "delta" {
		t.Fatalf("bankbw base = %q, want delta", got)
	}
	if sim.Delta() == nil {
		t.Fatal("bankbw's delta base not exposed through Simulator.Delta")
	}

	if _, err := New(WithCores(16), WithPolicy(PolicyBankBW),
		WithPolicyParams(PolicyBankBW, map[string]string{"Base": "bankbw"})); err == nil {
		t.Fatal("bankbw wrapping itself should be rejected")
	}
}

// TestPolicyParamsInvalidRejected: an unmarshalable WithPolicyParams value
// and params for an unregistered policy both surface as construction errors
// instead of being silently dropped.
func TestPolicyParamsInvalidRejected(t *testing.T) {
	if _, err := New(WithCores(16), WithPolicy(PolicyDelta),
		WithPolicyParams(PolicyDelta, make(chan int))); err == nil {
		t.Fatal("unmarshalable params should fail New")
	}
	if _, err := New(WithCores(16), WithPolicy(PolicyDelta),
		WithPolicyParams("bogus", map[string]int{"X": 1})); err == nil {
		t.Fatal("params for an unregistered policy should fail New")
	}
}

// TestDeprecatedParamWrappers: the legacy typed overrides still work and are
// equivalent to the uniform WithPolicyParams path.
func TestDeprecatedParamWrappers(t *testing.T) {
	p := core.DefaultParams()
	p.MaxTotalWays = 24
	a, err := New(WithCores(16), WithPolicy(PolicyDelta),
		WithWarmup(5_000), WithBudget(5_000), WithDeltaParams(p))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithCores(16), WithPolicy(PolicyDelta),
		WithWarmup(5_000), WithBudget(5_000), WithPolicyParams(PolicyDelta, p))
	if err != nil {
		t.Fatal(err)
	}
	if a.Delta().Params() != b.Delta().Params() {
		t.Fatalf("legacy WithDeltaParams diverged from WithPolicyParams:\n%+v\n%+v",
			a.Delta().Params(), b.Delta().Params())
	}
}

// Compile-time checks that the new policies satisfy the facade aliases.
var (
	_ Policy = (*lfoc.Policy)(nil)
	_ Policy = (*carma.Policy)(nil)
	_ Policy = (*bankbw.Policy)(nil)
)
