package delta_test

import (
	"fmt"
	"sort"

	"delta"
)

// ExampleNewSimulator runs a tiny DELTA simulation on one of the paper's
// workload mixes and prints stable facts about the outcome.
func ExampleNewSimulator() {
	sim := delta.NewSimulator(delta.Config{
		Cores:              16,
		Policy:             delta.PolicyDelta,
		WarmupInstructions: 20_000,
		BudgetInstructions: 20_000,
	})
	sim.LoadMix("w1")
	res := sim.Run()
	fmt.Println("cores:", len(res.Cores))
	fmt.Println("policy:", res.Policy)
	// Output:
	// cores: 16
	// policy: delta
}

// ExampleLookupApp resolves built-in SPEC CPU2006 models by name or short
// code.
func ExampleLookupApp() {
	a, _ := delta.LookupApp("xa")
	fmt.Println(a.Name, a.Class)
	b, _ := delta.LookupApp("libquantum")
	fmt.Println(b.Short, b.Class)
	// Output:
	// xalancbmk LM
	// li T
}

// ExampleMixNames lists the Table IV workload mixes.
func ExampleMixNames() {
	names := delta.MixNames()
	sort.Strings(names)
	fmt.Println(len(names), names[0])
	// Output:
	// 15 w1
}
